"""Synthetic HLS-style schedule and system-topology generation.

The paper's schedules come from GAUT's high-level synthesis of DSP
cores; this module generates schedules with the same *structure* —
streaming input phases, compute bursts, streaming output phases —
parameterized and seeded, for fuzz testing and scaling studies.

Beyond single-pearl schedules, :func:`random_topology` generates whole
*latency-insensitive system* descriptions: seeded DAG or cyclic
networks of patient processes, relay-segmented channels, jittery
sources and backpressuring sinks.  The description
(:class:`SystemTopology`) is pure data — picklable, JSON round-trip via
:func:`topology_to_dict` — so the batch verifier
(:mod:`repro.verify`) can ship cases across worker processes and
shrink failing ones to minimal reproducers.

Topologies come in two *traffic regimes*
(:attr:`TopologyProfile.traffic`): ``"random"`` draws jittery sources,
backpressuring sinks and mixed multi-point schedules, while
``"regular"`` keeps every stream perfectly periodic (uniform
schedules, no jitter, no backpressure) — the environment hypothesis of
the shift-register wrapper, which is verified only in that regime.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from ..core.io import schedule_from_dict, schedule_to_dict
from ..core.schedule import IOSchedule, SyncPoint


@dataclass(frozen=True)
class DSPProfile:
    """Shape parameters of a synthetic DSP core's schedule."""

    n_inputs: int = 2
    n_outputs: int = 2
    input_phase_ops: int = 16  # sync ops streaming operands in
    compute_burst: int = 32  # free-run cycles of internal compute
    output_phase_ops: int = 8  # sync ops streaming results out
    interleave: bool = False  # interleave I/O with micro-bursts

    def __post_init__(self) -> None:
        if self.n_inputs < 1 or self.n_outputs < 1:
            raise ValueError("need at least one input and one output")
        if self.input_phase_ops < 1 or self.output_phase_ops < 1:
            raise ValueError("phases need at least one operation")
        if self.compute_burst < 0:
            raise ValueError("compute burst must be >= 0")


def dsp_schedule(
    profile: DSPProfile | None = None, seed: int = 0
) -> IOSchedule:
    """Generate one GAUT-shaped cyclic schedule.

    Deterministic for a given (profile, seed): input masks rotate over
    the declared inputs the way an HLS binding rotates memory ports;
    the compute burst attaches to the last input op; outputs stream
    out round-robin with a status-style combined final push.
    """
    profile = profile or DSPProfile()
    rng = random.Random(seed)
    inputs = [f"in{i}" for i in range(profile.n_inputs)]
    outputs = [f"out{j}" for j in range(profile.n_outputs)]
    points: list[SyncPoint] = []

    for op in range(profile.input_phase_ops):
        k = 1 + rng.randrange(profile.n_inputs)
        start = rng.randrange(profile.n_inputs)
        subset = frozenset(
            inputs[(start + j) % profile.n_inputs] for j in range(k)
        )
        run = 0
        if profile.interleave and rng.random() < 0.3:
            run = rng.randrange(1, 4)
        last = op == profile.input_phase_ops - 1
        points.append(
            SyncPoint(
                subset,
                frozenset(),
                profile.compute_burst if last else run,
            )
        )

    for op in range(profile.output_phase_ops):
        last = op == profile.output_phase_ops - 1
        if last:
            subset = frozenset(outputs)  # combined status push
        else:
            subset = frozenset(
                {outputs[op % profile.n_outputs]}
            )
        points.append(SyncPoint(frozenset(), subset))

    return IOSchedule(inputs, outputs, points)


def random_schedule(
    seed: int,
    max_ports: int = 4,
    max_points: int = 12,
    max_run: int = 20,
) -> IOSchedule:
    """Unstructured random schedule (fuzzing input for the compiler and
    the RTL generators; every point may touch any port subset)."""
    rng = random.Random(seed)
    n_in = rng.randrange(1, max_ports + 1)
    n_out = rng.randrange(1, max_ports + 1)
    inputs = [f"i{k}" for k in range(n_in)]
    outputs = [f"o{k}" for k in range(n_out)]
    points = []
    for _ in range(rng.randrange(1, max_points + 1)):
        ins = frozenset(
            name for name in inputs if rng.random() < 0.5
        )
        outs = frozenset(
            name for name in outputs if rng.random() < 0.4
        )
        points.append(SyncPoint(ins, outs, rng.randrange(0, max_run + 1)))
    return IOSchedule(inputs, outputs, points)


# -- random system topologies --------------------------------------------------


#: Valid values of :attr:`TopologyProfile.traffic` /
#: :attr:`SystemTopology.traffic`.
TRAFFIC_MODES = ("random", "regular")


@dataclass(frozen=True)
class TopologyProfile:
    """Shape parameters of a random latency-insensitive system.

    Size and wiring:

    * ``min_processes`` / ``max_processes`` — process-count range;
    * ``max_ports`` — maximum inputs and maximum outputs per process;
    * ``max_points`` — sync points per non-uniform process schedule;
    * ``max_run`` — free-run cycles granted per sync point;
    * ``max_latency`` — channel forward latency (relay segmentation);
    * ``p_internal`` — probability an input is fed by an upstream
      process rather than an external source;
    * ``p_feedback`` / ``max_feedback`` — whether the topology gets
      credit-marked feedback channels, and how many at most;
    * ``port_depth`` — shell FIFO port depth.

    Traffic regime:

    * ``traffic`` — ``"random"`` (jittery sources, backpressuring
      sinks, mixed schedules) or ``"regular"`` (every process uniform,
      no source jitter, no sink backpressure — the environment
      hypothesis of the shift-register wrapper);
    * ``p_uniform`` — probability of an all-uniform topology in
      ``"random"`` mode (``"regular"`` mode is always uniform);
    * ``p_source_jitter`` / ``p_sink_backpressure`` — irregularity
      probabilities, ignored in ``"regular"`` mode;
    * ``source_tokens`` — tokens offered per source (regular-mode
      presets raise this so sources never run dry inside the default
      verification horizon, keeping the traffic truly periodic).
    """

    min_processes: int = 2
    max_processes: int = 5
    max_ports: int = 2  # max inputs and max outputs per process
    max_points: int = 4  # sync points per non-uniform process schedule
    max_run: int = 6  # free-run cycles granted per sync point
    max_latency: int = 3  # channel forward latency (relay segmentation)
    p_internal: float = 0.65  # input fed by an upstream process
    p_feedback: float = 0.35  # topology gets feedback edges at all
    max_feedback: int = 2  # feedback channels per topology
    p_uniform: float = 0.4  # all-uniform topology (analytic throughput)
    p_source_jitter: float = 0.6  # source gets an irregular gap pattern
    p_sink_backpressure: float = 0.5  # sink gets a stall pattern
    source_tokens: int = 256  # tokens offered per source
    port_depth: int = 2  # shell FIFO port depth
    traffic: str = "random"  # "random" | "regular" (see class docstring)

    def __post_init__(self) -> None:
        if self.min_processes < 1:
            raise ValueError("need at least one process")
        if self.max_processes < self.min_processes:
            raise ValueError("max_processes < min_processes")
        if self.max_ports < 1 or self.max_points < 1:
            raise ValueError("need at least one port and one point")
        if self.max_latency < 1:
            raise ValueError("channel latency must be >= 1")
        if self.port_depth < 1:
            raise ValueError("port depth must be >= 1")
        if self.source_tokens < 1:
            raise ValueError("sources need at least one token")
        if self.traffic not in TRAFFIC_MODES:
            raise ValueError(
                f"unknown traffic mode {self.traffic!r}; choose from "
                f"{sorted(TRAFFIC_MODES)}"
            )


#: Named topology-shape bundles for ``repro verify --profile``.
#:
#: * ``small``   — the historical default: 2–5 processes, shallow
#:   channels; fast enough for per-push CI smoke batches;
#: * ``soc``     — SoC-scale networks: more processes and ports, deeper
#:   relay-segmented channels, more feedback loops;
#: * ``stress``  — the widest shapes we generate: big cyclic networks,
#:   aggressive source jitter and sink backpressure, deep ports;
#: * ``regular`` — jitter-free periodic traffic over uniform schedules,
#:   the regime in which the shift-register wrapper styles join the
#:   differential oracle (``repro verify --traffic regular``).
PROFILE_PRESETS: dict[str, TopologyProfile] = {
    "small": TopologyProfile(),
    "regular": TopologyProfile(
        traffic="regular",
        min_processes=2,
        max_processes=6,
        max_ports=3,
        max_run=4,
        max_latency=3,
        p_internal=0.7,
        p_feedback=0.4,
        p_uniform=1.0,
        source_tokens=512,
    ),
    "soc": TopologyProfile(
        min_processes=4,
        max_processes=8,
        max_ports=3,
        max_points=6,
        max_run=8,
        max_latency=4,
        p_internal=0.75,
        p_feedback=0.45,
        max_feedback=3,
        p_uniform=0.3,
        port_depth=3,
    ),
    "stress": TopologyProfile(
        min_processes=6,
        max_processes=12,
        max_ports=4,
        max_points=8,
        max_run=10,
        max_latency=5,
        p_internal=0.8,
        p_feedback=0.6,
        max_feedback=4,
        p_uniform=0.2,
        p_source_jitter=0.8,
        p_sink_backpressure=0.7,
        source_tokens=320,
        port_depth=4,
    ),
}


@dataclass(frozen=True)
class ProcessNode:
    """One patient process of a generated topology."""

    name: str
    schedule: IOSchedule
    uniform: bool  # single sync point touching every port exactly once


@dataclass(frozen=True)
class TopologyChannel:
    """Process-to-process channel; ``tokens`` is the reset marking."""

    producer: str
    out_port: str
    consumer: str
    in_port: str
    latency: int = 1
    tokens: int = 0


@dataclass(frozen=True)
class TopologySource:
    """External stream feeding one process input."""

    name: str
    consumer: str
    in_port: str
    latency: int = 1
    n_tokens: int = 256
    base: int = 0  # token values are base, base+1, ...
    gaps: tuple[bool, ...] | None = None


@dataclass(frozen=True)
class TopologySink:
    """External consumer draining one process output."""

    name: str
    producer: str
    out_port: str
    latency: int = 1
    stalls: tuple[bool, ...] | None = None


@dataclass(frozen=True)
class SystemTopology:
    """A complete random LIS description — pure data, picklable.

    Instantiate it with :func:`repro.verify.build_system`, which pairs
    every process with a deterministic token-mixing pearl and a wrapper
    of the requested style.
    """

    name: str
    seed: int
    processes: tuple[ProcessNode, ...]
    channels: tuple[TopologyChannel, ...] = ()
    sources: tuple[TopologySource, ...] = ()
    sinks: tuple[TopologySink, ...] = ()
    port_depth: int = 2
    traffic: str = "random"  # generation regime ("random" | "regular")

    @property
    def uniform(self) -> bool:
        """True when every process has a single all-ports sync point —
        the regime where the marked-graph throughput model is exact."""
        return all(process.uniform for process in self.processes)

    @property
    def regular(self) -> bool:
        """True for regular-traffic topologies: uniform schedules, no
        source jitter, no sink backpressure — the environment in which
        the shift-register wrapper styles are verified."""
        return self.traffic == "regular"

    @property
    def has_feedback(self) -> bool:
        return any(channel.tokens > 0 for channel in self.channels)

    def process(self, name: str) -> ProcessNode:
        for node in self.processes:
            if node.name == name:
                return node
        raise KeyError(name)

    def stats(self) -> str:
        return (
            f"{len(self.processes)}p/{len(self.channels)}c/"
            f"{len(self.sources)}src/{len(self.sinks)}snk"
            f"{'/fb' if self.has_feedback else ''}"
            f"{'/reg' if self.regular else ''}"
        )


def _uniform_process_schedule(
    rng: random.Random, profile: TopologyProfile
) -> IOSchedule:
    n_in = rng.randint(1, profile.max_ports)
    n_out = rng.randint(1, profile.max_ports)
    inputs = tuple(f"i{k}" for k in range(n_in))
    outputs = tuple(f"o{k}" for k in range(n_out))
    run = rng.randrange(0, profile.max_run + 1)
    return IOSchedule(
        inputs,
        outputs,
        [SyncPoint(frozenset(inputs), frozenset(outputs), run)],
    )


def _structured_process_schedule(
    rng: random.Random, profile: TopologyProfile
) -> IOSchedule:
    """Random multi-point schedule in which every declared port is
    touched at least once per period (so every channel carries
    traffic)."""
    n_in = rng.randint(1, profile.max_ports)
    n_out = rng.randint(1, profile.max_ports)
    inputs = tuple(f"i{k}" for k in range(n_in))
    outputs = tuple(f"o{k}" for k in range(n_out))
    n_points = rng.randint(1, profile.max_points)
    ins_of: list[set[str]] = []
    outs_of: list[set[str]] = []
    runs: list[int] = []
    for _ in range(n_points):
        ins_of.append({name for name in inputs if rng.random() < 0.5})
        outs_of.append({name for name in outputs if rng.random() < 0.45})
        runs.append(
            rng.randrange(0, profile.max_run + 1)
            if rng.random() < 0.4
            else 0
        )
    for name in inputs:
        if not any(name in ins for ins in ins_of):
            ins_of[rng.randrange(n_points)].add(name)
    for name in outputs:
        if not any(name in outs for outs in outs_of):
            outs_of[rng.randrange(n_points)].add(name)
    return IOSchedule(
        inputs,
        outputs,
        [
            SyncPoint(frozenset(ins), frozenset(outs), run)
            for ins, outs, run in zip(ins_of, outs_of, runs)
        ],
    )


def random_topology(
    seed: int, profile: TopologyProfile | None = None
) -> SystemTopology:
    """Generate one seeded random LIS topology.

    ``seed`` fully determines the result for a given ``profile`` (the
    default profile is ``TopologyProfile()``): the same pair always
    yields the same :class:`SystemTopology`, bit-for-bit, which is what
    lets :mod:`repro.verify` replay and shrink cases across processes.

    Construction order makes every topology well-formed by design:

    1. processes with port-covering schedules (all-uniform with
       probability ``p_uniform`` — the analytically checkable regime);
    2. feedback channels (later process -> earlier process), each
       carrying at least one credit token, so every directed cycle in
       the resulting graph is marked and structurally live;
    3. forward DAG wiring of the remaining inputs, falling back to
       jittery sources; leftover outputs drain into sinks with optional
       backpressure patterns.

    With ``profile.traffic == "regular"`` every process is uniform and
    sources/sinks carry no jitter or backpressure patterns: the system
    settles into a periodic steady state, which is the environment
    hypothesis under which the shift-register wrapper styles can join
    the differential oracle.
    """
    profile = profile or TopologyProfile()
    regular = profile.traffic == "regular"
    rng = random.Random(seed)
    n = rng.randint(profile.min_processes, profile.max_processes)
    all_uniform = regular or rng.random() < profile.p_uniform
    processes = []
    for i in range(n):
        schedule = (
            _uniform_process_schedule(rng, profile)
            if all_uniform
            else _structured_process_schedule(rng, profile)
        )
        processes.append(
            ProcessNode(f"p{i}", schedule, uniform=all_uniform)
        )

    channels: list[TopologyChannel] = []
    bound_inputs: set[tuple[str, str]] = set()
    bound_outputs: set[tuple[str, str]] = set()

    # Feedback first: forward wiring below only consumes the leftovers.
    if n >= 2 and rng.random() < profile.p_feedback:
        for _ in range(rng.randint(1, profile.max_feedback)):
            j = rng.randrange(1, n)
            i = rng.randrange(0, j)
            producer, consumer = processes[j], processes[i]
            free_outs = [
                port
                for port in producer.schedule.outputs
                if (producer.name, port) not in bound_outputs
            ]
            free_ins = [
                port
                for port in consumer.schedule.inputs
                if (consumer.name, port) not in bound_inputs
            ]
            if not free_outs or not free_ins:
                continue
            out_port = rng.choice(free_outs)
            in_port = rng.choice(free_ins)
            channels.append(
                TopologyChannel(
                    producer.name,
                    out_port,
                    consumer.name,
                    in_port,
                    latency=rng.randint(1, profile.max_latency),
                    tokens=rng.randint(1, profile.port_depth),
                )
            )
            bound_outputs.add((producer.name, out_port))
            bound_inputs.add((consumer.name, in_port))

    # Forward DAG wiring; unbound inputs fall back to sources.
    sources: list[TopologySource] = []
    for j, consumer in enumerate(processes):
        for in_port in consumer.schedule.inputs:
            if (consumer.name, in_port) in bound_inputs:
                continue
            candidates = [
                (producer, out_port)
                for producer in processes[:j]
                for out_port in producer.schedule.outputs
                if (producer.name, out_port) not in bound_outputs
            ]
            if candidates and rng.random() < profile.p_internal:
                producer, out_port = candidates[
                    rng.randrange(len(candidates))
                ]
                channels.append(
                    TopologyChannel(
                        producer.name,
                        out_port,
                        consumer.name,
                        in_port,
                        latency=rng.randint(1, profile.max_latency),
                    )
                )
                bound_outputs.add((producer.name, out_port))
            else:
                index = len(sources)
                gaps = None
                if not regular and rng.random() < profile.p_source_jitter:
                    gaps = tuple(
                        rng.random() < 0.45 + 0.5 * rng.random()
                        for _ in range(rng.randint(7, 31))
                    )
                    if not any(gaps):
                        gaps = (True,) + gaps[1:]
                sources.append(
                    TopologySource(
                        f"src{index}",
                        consumer.name,
                        in_port,
                        latency=rng.randint(1, profile.max_latency),
                        n_tokens=profile.source_tokens,
                        base=1_000_000 * (index + 1),
                        gaps=gaps,
                    )
                )
            bound_inputs.add((consumer.name, in_port))

    # Every leftover output drains into a sink.
    sinks: list[TopologySink] = []
    for producer in processes:
        for out_port in producer.schedule.outputs:
            if (producer.name, out_port) in bound_outputs:
                continue
            index = len(sinks)
            stalls = None
            if not regular and rng.random() < profile.p_sink_backpressure:
                stalls = tuple(
                    rng.random() < 0.5 + 0.45 * rng.random()
                    for _ in range(rng.randint(5, 23))
                )
                if not any(stalls):
                    stalls = (True,) + stalls[1:]
            sinks.append(
                TopologySink(
                    f"snk{index}",
                    producer.name,
                    out_port,
                    latency=rng.randint(1, profile.max_latency),
                    stalls=stalls,
                )
            )
            bound_outputs.add((producer.name, out_port))

    return SystemTopology(
        name=f"topo{seed}",
        seed=seed,
        processes=tuple(processes),
        channels=tuple(channels),
        sources=tuple(sources),
        sinks=tuple(sinks),
        port_depth=profile.port_depth,
        traffic=profile.traffic,
    )


# -- topology validation (mutation-operator safety net) ------------------------


def validate_topology(topology: SystemTopology) -> None:
    """Check the structural invariants every generated (or mutated)
    topology must satisfy; raise :class:`ValueError` on the first
    violation.

    The invariants are exactly what :func:`repro.verify.build_system`
    and the simulator rely on:

    * unique names across processes, sources and sinks;
    * every process input bound exactly once (channel or source) and
      every process output bound exactly once (channel or sink), with
      no connection referencing an unknown process or port;
    * all latencies >= 1; channel reset markings within the port depth
      (a deeper preload would overflow the consumer FIFO at build);
    * every directed cycle contains at least one credit-marked channel
      (``tokens > 0``), so the system is structurally live;
    * regular-traffic topologies are uniform with no source jitter and
      no sink backpressure;
    * the ``uniform`` flag on a process matches its schedule (one sync
      point touching every port exactly once).
    """
    if not topology.processes:
        raise ValueError("topology has no processes")
    if topology.port_depth < 1:
        raise ValueError("port depth must be >= 1")
    if topology.traffic not in TRAFFIC_MODES:
        raise ValueError(f"unknown traffic mode {topology.traffic!r}")
    names: list[str] = [node.name for node in topology.processes]
    names += [src.name for src in topology.sources]
    names += [snk.name for snk in topology.sinks]
    if len(set(names)) != len(names):
        dupes = sorted(
            {name for name in names if names.count(name) > 1}
        )
        raise ValueError(f"duplicate block names: {dupes}")
    nodes = {node.name: node for node in topology.processes}

    def check_port(owner: str, port: str, direction: str) -> None:
        node = nodes.get(owner)
        if node is None:
            raise ValueError(f"connection references unknown process {owner!r}")
        ports = (
            node.schedule.inputs if direction == "in"
            else node.schedule.outputs
        )
        if port not in ports:
            raise ValueError(
                f"process {owner!r} has no {direction}put port {port!r}"
            )

    bound_inputs: set[tuple[str, str]] = set()
    bound_outputs: set[tuple[str, str]] = set()

    def bind(
        bound: set[tuple[str, str]], owner: str, port: str
    ) -> None:
        if (owner, port) in bound:
            raise ValueError(
                f"port {owner}.{port} is bound more than once"
            )
        bound.add((owner, port))

    for ch in topology.channels:
        check_port(ch.producer, ch.out_port, "out")
        check_port(ch.consumer, ch.in_port, "in")
        bind(bound_outputs, ch.producer, ch.out_port)
        bind(bound_inputs, ch.consumer, ch.in_port)
        if ch.latency < 1:
            raise ValueError("channel latency must be >= 1")
        if not 0 <= ch.tokens <= topology.port_depth:
            raise ValueError(
                f"channel reset marking {ch.tokens} outside "
                f"[0, port_depth={topology.port_depth}]"
            )
    for src in topology.sources:
        check_port(src.consumer, src.in_port, "in")
        bind(bound_inputs, src.consumer, src.in_port)
        if src.latency < 1:
            raise ValueError("source latency must be >= 1")
        if src.n_tokens < 1:
            raise ValueError("sources need at least one token")
    for snk in topology.sinks:
        check_port(snk.producer, snk.out_port, "out")
        bind(bound_outputs, snk.producer, snk.out_port)
        if snk.latency < 1:
            raise ValueError("sink latency must be >= 1")
    for node in topology.processes:
        for port in node.schedule.inputs:
            if (node.name, port) not in bound_inputs:
                raise ValueError(f"input {node.name}.{port} is unbound")
        for port in node.schedule.outputs:
            if (node.name, port) not in bound_outputs:
                raise ValueError(f"output {node.name}.{port} is unbound")
        if node.uniform:
            points = node.schedule.points
            if len(points) != 1 or (
                points[0].inputs != frozenset(node.schedule.inputs)
                or points[0].outputs != frozenset(node.schedule.outputs)
            ):
                raise ValueError(
                    f"process {node.name} is flagged uniform but its "
                    "schedule is not a single all-ports sync point"
                )
    if topology.regular:
        if not topology.uniform:
            raise ValueError("regular-traffic topology must be uniform")
        if any(src.gaps is not None for src in topology.sources):
            raise ValueError("regular-traffic sources cannot jitter")
        if any(snk.stalls is not None for snk in topology.sinks):
            raise ValueError("regular-traffic sinks cannot backpressure")
    # Structural liveness: the subgraph of *unmarked* channels must be
    # acyclic — every directed cycle then carries a credit token.
    unmarked: dict[str, list[str]] = {}
    for ch in topology.channels:
        if ch.tokens == 0:
            unmarked.setdefault(ch.producer, []).append(ch.consumer)
    state: dict[str, int] = {}  # 1 = on stack, 2 = done

    def visit(name: str) -> None:
        state[name] = 1
        for successor in unmarked.get(name, ()):
            mark = state.get(successor)
            if mark == 1:
                raise ValueError(
                    "directed cycle without a credit-marked channel "
                    f"(through {successor!r})"
                )
            if mark is None:
                visit(successor)
        state[name] = 2

    for name in nodes:
        if state.get(name) is None:
            visit(name)


# -- validity-preserving topology mutation (coverage-guided fuzzing) -----------


#: Mutation operators :func:`mutate_topology` can apply.  Every
#: operator preserves :func:`validate_topology`'s invariants, so a
#: mutant simulates under any wrapper style exactly like a freshly
#: generated topology:
#:
#: * ``add_feedback``    — rewire a sink and a source into a credit-
#:   marked channel (at least one token, so any new cycle is live);
#: * ``remove_feedback`` — cut one marked channel, draining its ends
#:   into a fresh sink and source;
#: * ``deepen_path``     — insert a uniform pass-through process into
#:   the middle of one connection (longer paths, more processes);
#: * ``widen_fanout``    — grow one process's out-degree: a new output
#:   port (touched by its schedule) draining into a new sink;
#: * ``stretch_latency`` — deepen one connection's relay segmentation
#:   beyond what the drawing profile would ever reach;
#: * ``toggle_jitter``   — add or remove one source gap pattern / sink
#:   stall pattern (random traffic only);
#: * ``splice``          — graft a second corpus topology in (renamed
#:   apart) and bridge one boundary sink/source pair into a channel.
MUTATION_OPS = (
    "add_feedback",
    "remove_feedback",
    "deepen_path",
    "widen_fanout",
    "stretch_latency",
    "toggle_jitter",
    "splice",
)

#: Mutants larger than this many processes are rejected
#: (``deepen_path``/``splice`` return ``None`` instead) so repeated
#: mutation rounds cannot grow unsimulatably large systems.
MUTATION_MAX_PROCESSES = 24


def _fresh_name(base: str, used: set[str]) -> str:
    index = 0
    while f"{base}{index}" in used:
        index += 1
    return f"{base}{index}"


def _used_names(topology: SystemTopology) -> set[str]:
    return (
        {node.name for node in topology.processes}
        | {src.name for src in topology.sources}
        | {snk.name for snk in topology.sinks}
    )


def _passthrough_node(name: str, run: int) -> ProcessNode:
    schedule = IOSchedule(
        ("i0",),
        ("o0",),
        [SyncPoint(frozenset({"i0"}), frozenset({"o0"}), run)],
    )
    return ProcessNode(name, schedule, uniform=True)


def _mutate_add_feedback(
    topology: SystemTopology, rng: random.Random, bound: int
) -> SystemTopology | None:
    """Rewire one sink and one source into a credit-marked channel.

    The new channel always carries at least one token, so every cycle
    it closes is marked and structurally live."""
    if not topology.sinks or not topology.sources:
        return None
    snk = topology.sinks[rng.randrange(len(topology.sinks))]
    src = topology.sources[rng.randrange(len(topology.sources))]
    channel = TopologyChannel(
        snk.producer,
        snk.out_port,
        src.consumer,
        src.in_port,
        latency=min(bound, rng.randint(1, 4)),
        tokens=rng.randint(1, topology.port_depth),
    )
    return replace(
        topology,
        channels=topology.channels + (channel,),
        sources=tuple(s for s in topology.sources if s.name != src.name),
        sinks=tuple(s for s in topology.sinks if s.name != snk.name),
    )


def _mutate_remove_feedback(
    topology: SystemTopology, rng: random.Random, bound: int
) -> SystemTopology | None:
    """Cut one marked channel; its ends drain into a fresh sink and a
    fresh source (removing an edge can never create a cycle)."""
    marked = [ch for ch in topology.channels if ch.tokens > 0]
    if not marked:
        return None
    victim = marked[rng.randrange(len(marked))]
    used = _used_names(topology)
    source = TopologySource(
        _fresh_name("mutsrc", used),
        victim.consumer,
        victim.in_port,
        latency=victim.latency,
        n_tokens=256,
        base=1_000_000 * (len(topology.sources) + len(topology.sinks) + 2),
    )
    sink = TopologySink(
        _fresh_name("mutsnk", used),
        victim.producer,
        victim.out_port,
        latency=victim.latency,
    )
    channels = tuple(ch for ch in topology.channels if ch is not victim)
    return replace(
        topology,
        channels=channels,
        sources=topology.sources + (source,),
        sinks=topology.sinks + (sink,),
    )


def _mutate_deepen_path(
    topology: SystemTopology, rng: random.Random, bound: int
) -> SystemTopology | None:
    """Insert a uniform pass-through process into one connection.

    A channel's reset marking moves to the new downstream half, so a
    marked cycle through the split edge stays marked."""
    if len(topology.processes) >= MUTATION_MAX_PROCESSES:
        return None
    kinds = (
        [("ch", i) for i in range(len(topology.channels))]
        + [("src", i) for i in range(len(topology.sources))]
        + [("snk", i) for i in range(len(topology.sinks))]
    )
    if not kinds:
        return None
    kind, index = kinds[rng.randrange(len(kinds))]
    name = _fresh_name("m", _used_names(topology))
    node = _passthrough_node(name, run=rng.randrange(0, 3))
    processes = topology.processes + (node,)
    if kind == "ch":
        ch = topology.channels[index]
        lat_a = rng.randint(1, max(1, ch.latency))
        lat_b = max(1, ch.latency + 1 - lat_a)
        upstream = TopologyChannel(
            ch.producer, ch.out_port, name, "i0", latency=lat_a
        )
        downstream = TopologyChannel(
            name, "o0", ch.consumer, ch.in_port,
            latency=lat_b, tokens=ch.tokens,
        )
        channels = (
            topology.channels[:index]
            + (upstream, downstream)
            + topology.channels[index + 1:]
        )
        return replace(topology, processes=processes, channels=channels)
    if kind == "src":
        src = topology.sources[index]
        downstream = TopologyChannel(
            name, "o0", src.consumer, src.in_port, latency=src.latency
        )
        sources = (
            topology.sources[:index]
            + (replace(src, consumer=name, in_port="i0"),)
            + topology.sources[index + 1:]
        )
        return replace(
            topology,
            processes=processes,
            channels=topology.channels + (downstream,),
            sources=sources,
        )
    snk = topology.sinks[index]
    upstream = TopologyChannel(
        snk.producer, snk.out_port, name, "i0", latency=snk.latency
    )
    sinks = (
        topology.sinks[:index]
        + (replace(snk, producer=name, out_port="o0"),)
        + topology.sinks[index + 1:]
    )
    return replace(
        topology,
        processes=processes,
        channels=topology.channels + (upstream,),
        sinks=sinks,
    )


def _mutate_widen_fanout(
    topology: SystemTopology, rng: random.Random, bound: int
) -> SystemTopology | None:
    """Add one output port to a process (touched by its schedule) and
    drain it into a fresh sink."""
    index = rng.randrange(len(topology.processes))
    node = topology.processes[index]
    schedule = node.schedule
    taken = set(schedule.inputs) | set(schedule.outputs)
    port = 0
    while f"o{port}" in taken:
        port += 1
    new_port = f"o{port}"
    if node.uniform:
        touched = {0}
    else:
        touched = {rng.randrange(len(schedule.points))}
    points = [
        SyncPoint(
            point.inputs,
            point.outputs | ({new_port} if i in touched else set()),
            point.run,
        )
        for i, point in enumerate(schedule.points)
    ]
    widened = ProcessNode(
        node.name,
        IOSchedule(
            schedule.inputs, schedule.outputs + (new_port,), points
        ),
        node.uniform,
    )
    sink = TopologySink(
        _fresh_name("mutsnk", _used_names(topology)),
        node.name,
        new_port,
        latency=min(bound, rng.randint(1, 3)),
    )
    processes = (
        topology.processes[:index]
        + (widened,)
        + topology.processes[index + 1:]
    )
    return replace(
        topology, processes=processes, sinks=topology.sinks + (sink,)
    )


def _mutate_stretch_latency(
    topology: SystemTopology, rng: random.Random, bound: int
) -> SystemTopology | None:
    """Deepen one connection's relay segmentation toward ``bound`` —
    beyond what the drawing profile's ``max_latency`` ever reaches."""
    kinds = (
        [("ch", i) for i, ch in enumerate(topology.channels)
         if ch.latency < bound]
        + [("src", i) for i, src in enumerate(topology.sources)
           if src.latency < bound]
        + [("snk", i) for i, snk in enumerate(topology.sinks)
           if snk.latency < bound]
    )
    if not kinds:
        return None
    kind, index = kinds[rng.randrange(len(kinds))]
    if kind == "ch":
        ch = topology.channels[index]
        stretched = replace(
            ch, latency=rng.randint(ch.latency + 1, bound)
        )
        return replace(
            topology,
            channels=(
                topology.channels[:index]
                + (stretched,)
                + topology.channels[index + 1:]
            ),
        )
    if kind == "src":
        src = topology.sources[index]
        stretched = replace(
            src, latency=rng.randint(src.latency + 1, bound)
        )
        return replace(
            topology,
            sources=(
                topology.sources[:index]
                + (stretched,)
                + topology.sources[index + 1:]
            ),
        )
    snk = topology.sinks[index]
    stretched = replace(
        snk, latency=rng.randint(snk.latency + 1, bound)
    )
    return replace(
        topology,
        sinks=(
            topology.sinks[:index]
            + (stretched,)
            + topology.sinks[index + 1:]
        ),
    )


def _draw_gap_pattern(rng: random.Random, low: int, high: int) -> tuple[bool, ...]:
    pattern = tuple(
        rng.random() < 0.45 + 0.5 * rng.random()
        for _ in range(rng.randint(low, high))
    )
    if not any(pattern):
        pattern = (True,) + pattern[1:]
    return pattern


def _mutate_toggle_jitter(
    topology: SystemTopology, rng: random.Random, bound: int
) -> SystemTopology | None:
    """Add or remove one source gap / sink stall pattern.  Regular
    traffic must stay jitter-free, so regular topologies are left
    alone."""
    if topology.regular:
        return None
    kinds = (
        [("src", i) for i in range(len(topology.sources))]
        + [("snk", i) for i in range(len(topology.sinks))]
    )
    if not kinds:
        return None
    kind, index = kinds[rng.randrange(len(kinds))]
    if kind == "src":
        src = topology.sources[index]
        toggled = replace(
            src,
            gaps=(
                None
                if src.gaps is not None
                else _draw_gap_pattern(rng, 7, 31)
            ),
        )
        return replace(
            topology,
            sources=(
                topology.sources[:index]
                + (toggled,)
                + topology.sources[index + 1:]
            ),
        )
    snk = topology.sinks[index]
    toggled = replace(
        snk,
        stalls=(
            None
            if snk.stalls is not None
            else _draw_gap_pattern(rng, 5, 23)
        ),
    )
    return replace(
        topology,
        sinks=(
            topology.sinks[:index]
            + (toggled,)
            + topology.sinks[index + 1:]
        ),
    )


def _mutate_splice(
    topology: SystemTopology,
    rng: random.Random,
    bound: int,
    other: SystemTopology | None,
) -> SystemTopology | None:
    """Graft ``other`` into ``topology`` (renamed apart) and bridge one
    boundary sink/source pair into a forward channel.

    All bridging runs one way (host -> graft), so no unmarked cycle
    can form across the seam."""
    if other is None or other.traffic != topology.traffic:
        return None
    total = len(topology.processes) + len(other.processes)
    if total > MUTATION_MAX_PROCESSES:
        return None
    used = _used_names(topology)
    renames: dict[str, str] = {}
    for name in (
        [node.name for node in other.processes]
        + [src.name for src in other.sources]
        + [snk.name for snk in other.sinks]
    ):
        fresh = name
        while fresh in used or fresh in renames.values():
            fresh += "g"
        renames[name] = fresh
    processes = topology.processes + tuple(
        ProcessNode(renames[node.name], node.schedule, node.uniform)
        for node in other.processes
    )
    channels = topology.channels + tuple(
        replace(
            ch,
            producer=renames[ch.producer],
            consumer=renames[ch.consumer],
        )
        for ch in other.channels
    )
    sources = list(
        topology.sources
    ) + [
        replace(src, name=renames[src.name], consumer=renames[src.consumer])
        for src in other.sources
    ]
    sinks = list(
        topology.sinks
    ) + [
        replace(snk, name=renames[snk.name], producer=renames[snk.producer])
        for snk in other.sinks
    ]
    # Bridge one host sink into one grafted source (forward edge only).
    host_sinks = [
        i for i, snk in enumerate(sinks)
        if snk.name in {s.name for s in topology.sinks}
    ]
    graft_sources = [
        i for i, src in enumerate(sources)
        if src.name in set(renames.values())
    ]
    if host_sinks and graft_sources:
        snk_i = host_sinks[rng.randrange(len(host_sinks))]
        src_i = graft_sources[rng.randrange(len(graft_sources))]
        snk, src = sinks[snk_i], sources[src_i]
        channels = channels + (
            TopologyChannel(
                snk.producer,
                snk.out_port,
                src.consumer,
                src.in_port,
                latency=min(bound, rng.randint(1, 3)),
            ),
        )
        del sinks[snk_i]
        del sources[src_i]
    return replace(
        topology,
        name=f"{topology.name}+{other.name}",
        processes=processes,
        channels=channels,
        sources=tuple(sources),
        sinks=tuple(sinks),
        port_depth=max(topology.port_depth, other.port_depth),
    )


def mutate_topology(
    topology: SystemTopology,
    rng: random.Random,
    op: str | None = None,
    other: SystemTopology | None = None,
    max_latency: int = 8,
) -> SystemTopology | None:
    """Apply one validity-preserving mutation operator to ``topology``.

    ``op`` names one of :data:`MUTATION_OPS` (``None`` draws one from
    ``rng``); ``other`` supplies the second parent for ``splice``.
    Returns ``None`` when the operator does not apply (no feedback to
    remove, nothing left to stretch, regular traffic for
    ``toggle_jitter``, missing/oversized splice partner, …) — callers
    retry with another draw.  The result is deterministic for a given
    ``(topology, rng state, op, other)``, passes
    :func:`validate_topology`, and differs from ``topology`` in
    exactly the operator's documented way, so the coverage-guided
    fuzzer (:mod:`repro.verify.corpus`) can walk the topology space
    far outside any drawing profile's reach while every mutant stays
    simulatable under every wrapper style.
    """
    if op is None:
        op = MUTATION_OPS[rng.randrange(len(MUTATION_OPS))]
    if max_latency < 1:
        raise ValueError("max_latency must be >= 1")
    if op == "add_feedback":
        mutated = _mutate_add_feedback(topology, rng, max_latency)
    elif op == "remove_feedback":
        mutated = _mutate_remove_feedback(topology, rng, max_latency)
    elif op == "deepen_path":
        mutated = _mutate_deepen_path(topology, rng, max_latency)
    elif op == "widen_fanout":
        mutated = _mutate_widen_fanout(topology, rng, max_latency)
    elif op == "stretch_latency":
        mutated = _mutate_stretch_latency(topology, rng, max_latency)
    elif op == "toggle_jitter":
        mutated = _mutate_toggle_jitter(topology, rng, max_latency)
    elif op == "splice":
        mutated = _mutate_splice(topology, rng, max_latency, other)
    else:
        raise ValueError(
            f"unknown mutation operator {op!r}; choose from "
            f"{MUTATION_OPS}"
        )
    if mutated is None:
        return None
    if op != "splice":
        mutated = replace(mutated, name=f"{topology.name}~{op}")
    return mutated


# -- latency-perturbed variants (metamorphic verification) --------------------


#: Perturbation axes :func:`derive_variants` can draw from.
#:
#: * ``resegment`` — re-draw every connection's relay segmentation
#:   around its current depth (latency +/- within bounds);
#: * ``pipeline``  — add extra pipeline stages to feed-forward edges
#:   only (channels without a reset marking, sources, sinks), leaving
#:   every credit-marked feedback channel untouched;
#: * ``floorplan`` — place the blocks on a seeded millimetre grid and
#:   let :func:`repro.lis.floorplan.plan_channels` at a drawn target
#:   clock dictate each channel's relay count;
#: * ``dynamic``   — keep every latency as-is but carry a seeded
#:   mid-run stall plan (:mod:`repro.lis.stall`): relay-station/link
#:   stalls injected while the system is running.
PERTURB_KINDS = ("resegment", "pipeline", "floorplan", "dynamic")


@dataclass(frozen=True)
class TopologyVariant:
    """One latency-perturbed sibling of a base topology.

    For the static kinds the variant's :class:`SystemTopology` differs
    from the base *only* in connection latencies (relay segmentation):
    processes, schedules, wiring, reset markings, jitter and
    backpressure patterns are all preserved.  A ``dynamic`` variant
    keeps even the latencies and instead carries ``stalls`` — a seeded
    mid-run stall plan (:mod:`repro.lis.stall`) applied while the
    variant simulates.  Either way the perturbation is exactly the
    "interconnect latency variation" the LIS methodology promises
    cannot break functionality, so its sink streams must be
    token-for-token identical to the base's on the common prefix.
    """

    kind: str  # one of PERTURB_KINDS
    index: int  # position in the drawn variant list
    topology: SystemTopology
    clock_period_ns: float | None = None  # floorplan variants only
    # Mid-run stall plan (dynamic variants only): tuple of
    # repro.lis.stall.LinkStall records.
    stalls: tuple = ()

    @property
    def label(self) -> str:
        return f"{self.kind}{self.index}"


def _clamp_latency(latency: int, bound: int) -> int:
    return max(1, min(bound, latency))


def _resegment_variant(
    topology: SystemTopology, rng: random.Random, bound: int
) -> SystemTopology:
    """Re-draw every connection's relay depth around its current value."""
    channels = tuple(
        replace(
            ch,
            latency=_clamp_latency(
                ch.latency + rng.randint(-2, 2), bound
            ),
        )
        for ch in topology.channels
    )
    sources = tuple(
        replace(
            src,
            latency=_clamp_latency(
                src.latency + rng.randint(-2, 2), bound
            ),
        )
        for src in topology.sources
    )
    sinks = tuple(
        replace(
            snk,
            latency=_clamp_latency(
                snk.latency + rng.randint(-2, 2), bound
            ),
        )
        for snk in topology.sinks
    )
    return replace(
        topology, channels=channels, sources=sources, sinks=sinks
    )


def _pipeline_variant(
    topology: SystemTopology, rng: random.Random, bound: int
) -> SystemTopology:
    """Extra pipelining on feed-forward edges only: credit-marked
    feedback channels keep their latency (and their marking), so every
    loop's structural liveness argument is untouched."""
    channels = tuple(
        ch
        if ch.tokens > 0
        else replace(
            ch,
            latency=_clamp_latency(
                ch.latency + rng.randint(1, 3), bound
            ),
        )
        for ch in topology.channels
    )
    sources = tuple(
        replace(
            src,
            latency=_clamp_latency(
                src.latency + rng.randint(0, 2), bound
            ),
        )
        for src in topology.sources
    )
    sinks = tuple(
        replace(
            snk,
            latency=_clamp_latency(
                snk.latency + rng.randint(0, 2), bound
            ),
        )
        for snk in topology.sinks
    )
    return replace(
        topology, channels=channels, sources=sources, sinks=sinks
    )


def _floorplan_variant(
    topology: SystemTopology, rng: random.Random, bound: int
) -> tuple[SystemTopology, float]:
    """Latencies dictated by a seeded placement at a drawn target clock.

    Every block (process, source, sink) lands on a millimetre grid
    whose die side grows with the block count; each connection's relay
    count then comes from :func:`repro.lis.floorplan.plan_channel` at
    the drawn clock period — the paper's physical feedback loop, where
    a faster clock shortens the per-cycle reachable distance and
    demands deeper channel segmentation.
    """
    from ..lis.floorplan import Floorplan, plan_channel

    blocks = (
        [node.name for node in topology.processes]
        + [src.name for src in topology.sources]
        + [snk.name for snk in topology.sinks]
    )
    side = 4.0 * max(1.0, len(blocks)) ** 0.5
    floorplan = Floorplan()
    for name in blocks:
        floorplan.place(
            name, rng.uniform(0.0, side), rng.uniform(0.0, side)
        )
    period_ns = rng.choice((1.0, 1.5, 2.0, 3.0))

    def planned(producer: str, consumer: str) -> int:
        plan = plan_channel(floorplan, producer, consumer, period_ns)
        return _clamp_latency(plan.latency, bound)

    channels = tuple(
        replace(ch, latency=planned(ch.producer, ch.consumer))
        for ch in topology.channels
    )
    sources = tuple(
        replace(src, latency=planned(src.name, src.consumer))
        for src in topology.sources
    )
    sinks = tuple(
        replace(snk, latency=planned(snk.producer, snk.name))
        for snk in topology.sinks
    )
    return (
        replace(
            topology, channels=channels, sources=sources, sinks=sinks
        ),
        period_ns,
    )


def topology_link_names(topology: SystemTopology) -> tuple[str, ...]:
    """Every link name a built system for ``topology`` will have —
    channel heads plus the per-relay segment links.

    Mirrors the naming scheme of :meth:`repro.lis.system.System`
    (``connect``/``connect_source``/``connect_sink`` head names,
    ``.seg{k}`` from :func:`repro.lis.relay_station.segment_channel`),
    which is what lets stall plans address links of a system that does
    not exist yet.
    """
    names: list[str] = []

    def add(base: str, latency: int) -> None:
        names.append(base)
        names.extend(f"{base}.seg{k}" for k in range(1, latency))

    for ch in topology.channels:
        add(
            f"{ch.producer}.{ch.out_port}->{ch.consumer}.{ch.in_port}",
            ch.latency,
        )
    for src in topology.sources:
        add(f"{src.name}->{src.consumer}.{src.in_port}", src.latency)
    for snk in topology.sinks:
        add(f"{snk.producer}.{snk.out_port}->{snk.name}", snk.latency)
    return tuple(names)


def _dynamic_variant(
    topology: SystemTopology, rng: random.Random, horizon: int
) -> tuple:
    """A seeded mid-run stall plan over the unchanged topology."""
    from ..lis.stall import derive_stall_plan

    return derive_stall_plan(
        topology_link_names(topology), rng, horizon
    )


def derive_variants(
    topology: SystemTopology,
    k: int,
    seed: int = 0,
    floorplan: bool = False,
    max_latency: int = 8,
    dynamic: bool = False,
    horizon: int = 300,
) -> tuple[TopologyVariant, ...]:
    """Draw ``k`` latency-perturbed variants of ``topology``.

    Deterministic for a given ``(topology, k, seed, floorplan,
    dynamic, horizon, max_latency)``: perturbation kinds round-robin
    over ``resegment`` and ``pipeline`` (plus ``floorplan`` when
    requested; with ``dynamic`` the round-robin *starts* with a
    ``dynamic`` stall-plan variant so even a 1-variant draw perturbs
    dynamic latency), and each variant gets its own sub-seeded
    generator, so variant ``i`` of a ``k``-variant draw equals
    variant ``i`` of any larger draw with the same flags.

    Only connection latencies change — never schedules, wiring, reset
    markings (feedback credits), jitter or backpressure patterns; a
    ``dynamic`` variant changes nothing structural at all and instead
    carries mid-run link stalls drawn inside the first three quarters
    of ``horizon`` simulated cycles.  Either way the variants are
    exactly the "interconnect latency variations" the LIS methodology
    promises cannot break functionality, and
    :mod:`repro.verify.perturb` may demand identical sink streams.
    """
    if k < 0:
        raise ValueError("variant count must be >= 0")
    if max_latency < 1:
        raise ValueError("max_latency must be >= 1")
    kinds = (
        (("dynamic",) if dynamic else ())
        + ("resegment", "pipeline")
        + (("floorplan",) if floorplan else ())
    )
    variants: list[TopologyVariant] = []
    for index in range(k):
        kind = kinds[index % len(kinds)]
        rng = random.Random((seed + 1) * 1_000_003 + index * 7919)
        period_ns: float | None = None
        stalls: tuple = ()
        if kind == "resegment":
            perturbed = _resegment_variant(topology, rng, max_latency)
        elif kind == "pipeline":
            perturbed = _pipeline_variant(topology, rng, max_latency)
        elif kind == "dynamic":
            perturbed = topology
            stalls = _dynamic_variant(topology, rng, horizon)
        else:
            perturbed, period_ns = _floorplan_variant(
                topology, rng, max_latency
            )
        perturbed = replace(
            perturbed, name=f"{topology.name}~{kind}{index}"
        )
        variants.append(
            TopologyVariant(kind, index, perturbed, period_ns, stalls)
        )
    return tuple(variants)


# -- JSON round-trip (shrunk-reproducer exchange format) ----------------------


def topology_to_dict(topology: SystemTopology) -> dict:
    """JSON-ready representation of a topology."""
    return {
        "name": topology.name,
        "seed": topology.seed,
        "port_depth": topology.port_depth,
        "traffic": topology.traffic,
        "processes": [
            {
                "name": node.name,
                "uniform": node.uniform,
                "schedule": schedule_to_dict(node.schedule),
            }
            for node in topology.processes
        ],
        "channels": [
            {
                "producer": ch.producer,
                "out_port": ch.out_port,
                "consumer": ch.consumer,
                "in_port": ch.in_port,
                "latency": ch.latency,
                "tokens": ch.tokens,
            }
            for ch in topology.channels
        ],
        "sources": [
            {
                "name": src.name,
                "consumer": src.consumer,
                "in_port": src.in_port,
                "latency": src.latency,
                "n_tokens": src.n_tokens,
                "base": src.base,
                "gaps": (
                    None
                    if src.gaps is None
                    else [int(g) for g in src.gaps]
                ),
            }
            for src in topology.sources
        ],
        "sinks": [
            {
                "name": snk.name,
                "producer": snk.producer,
                "out_port": snk.out_port,
                "latency": snk.latency,
                "stalls": (
                    None
                    if snk.stalls is None
                    else [int(s) for s in snk.stalls]
                ),
            }
            for snk in topology.sinks
        ],
    }


def variant_to_dict(variant: TopologyVariant) -> dict:
    """JSON-ready representation of one latency-perturbed variant.

    Dynamic variants additionally carry a ``stalls`` list (their
    mid-run stall plan); static variants omit the key.
    """
    data = {
        "kind": variant.kind,
        "index": variant.index,
        "clock_period_ns": variant.clock_period_ns,
        "topology": topology_to_dict(variant.topology),
    }
    if variant.stalls:
        from ..lis.stall import stall_to_dict

        data["stalls"] = [
            stall_to_dict(stall) for stall in variant.stalls
        ]
    return data


def variant_from_dict(data: dict) -> TopologyVariant:
    """Inverse of :func:`variant_to_dict`."""
    period = data.get("clock_period_ns")
    stalls: tuple = ()
    if data.get("stalls"):
        from ..lis.stall import stall_from_dict

        stalls = tuple(
            stall_from_dict(stall) for stall in data["stalls"]
        )
    return TopologyVariant(
        kind=str(data["kind"]),
        index=int(data["index"]),
        topology=topology_from_dict(data["topology"]),
        clock_period_ns=None if period is None else float(period),
        stalls=stalls,
    )


def topology_from_dict(data: dict) -> SystemTopology:
    """Inverse of :func:`topology_to_dict`."""
    return SystemTopology(
        name=str(data["name"]),
        seed=int(data["seed"]),
        port_depth=int(data.get("port_depth", 2)),
        traffic=str(data.get("traffic", "random")),
        processes=tuple(
            ProcessNode(
                name=str(p["name"]),
                schedule=schedule_from_dict(p["schedule"]),
                uniform=bool(p.get("uniform", False)),
            )
            for p in data["processes"]
        ),
        channels=tuple(
            TopologyChannel(
                producer=str(c["producer"]),
                out_port=str(c["out_port"]),
                consumer=str(c["consumer"]),
                in_port=str(c["in_port"]),
                latency=int(c.get("latency", 1)),
                tokens=int(c.get("tokens", 0)),
            )
            for c in data["channels"]
        ),
        sources=tuple(
            TopologySource(
                name=str(s["name"]),
                consumer=str(s["consumer"]),
                in_port=str(s["in_port"]),
                latency=int(s.get("latency", 1)),
                n_tokens=int(s.get("n_tokens", 256)),
                base=int(s.get("base", 0)),
                gaps=(
                    None
                    if s.get("gaps") is None
                    else tuple(bool(g) for g in s["gaps"])
                ),
            )
            for s in data["sources"]
        ),
        sinks=tuple(
            TopologySink(
                name=str(s["name"]),
                producer=str(s["producer"]),
                out_port=str(s["out_port"]),
                latency=int(s.get("latency", 1)),
                stalls=(
                    None
                    if s.get("stalls") is None
                    else tuple(bool(v) for v in s["stalls"])
                ),
            )
            for s in data["sinks"]
        ),
    )
