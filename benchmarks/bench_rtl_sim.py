"""Compiled-vs-interpreted RTL simulation engine benchmark.

Both engines simulate the same SP *golden* wrapper (the reference
schedule of ``tests/test_rtl_golden.py``) under an identical seeded
FIFO-status stimulus, replaying the exact per-cycle access pattern of
:class:`repro.core.equivalence.RTLShell`: poke every ``not_empty``/
``not_full`` input, settle, peek every strobe, step.  The acceptance
bar is a >= 5x speedup for the compiled engine; cycles/second for both
engines is tracked in the written artifact.

Quick mode (``REPRO_BENCH_QUICK=1``, used by the CI smoke step) runs a
shorter stimulus; the speedup bar is unchanged.
"""

from __future__ import annotations

import os
import random
import time

from repro.core.schedule import IOSchedule, SyncPoint
from repro.core.synthesis import synthesize_wrapper
from repro.rtl.compile_sim import CompiledSimulator
from repro.rtl.simulator import InterpSimulator

from _bench_common import write_result

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
CYCLES = 2000 if QUICK else 10000
ROUNDS = 2 if QUICK else 3
REQUIRED_SPEEDUP = 5.0


def _golden_sp_module():
    """The golden-file reference schedule, synthesized in SP style."""
    schedule = IOSchedule(
        ["a", "b"],
        ["y", "status"],
        [
            SyncPoint({"a"}, frozenset(), run=1),
            SyncPoint({"a", "b"}, frozenset(), run=3),
            SyncPoint(frozenset(), {"y"}),
            SyncPoint(frozenset(), {"y", "status"}, run=2),
        ],
    )
    return synthesize_wrapper(schedule, "sp", name="bench_sp").module


_STATUS_INPUTS = (
    "a_not_empty",
    "b_not_empty",
    "y_not_full",
    "status_not_full",
)
_STROBES = ("ip_enable", "a_pop", "b_pop", "y_push", "status_push")


def _stimulus(cycles: int) -> list[tuple[int, ...]]:
    rng = random.Random(20050307)
    return [
        tuple(rng.getrandbits(1) for _ in _STATUS_INPUTS)
        for _ in range(cycles)
    ]


def _drive(sim, stimulus) -> int:
    """RTLShell-shaped loop; returns a checksum over all strobes."""
    checksum = 0
    sim.poke("rst", 1)
    sim.step()
    sim.poke("rst", 0)
    for statuses in stimulus:
        for name, value in zip(_STATUS_INPUTS, statuses):
            sim.poke(name, value)
        sim.settle()
        for name in _STROBES:
            checksum = (checksum * 33 + sim.peek(name)) & 0xFFFFFFFF
        sim.step()
    return checksum


def _time_pair(module, stimulus):
    """One round: (interp seconds, compiled seconds), same stimulus.

    Simulator construction sits outside the timed region for both
    engines: the compiled engine's elaboration cost is amortized by
    the structural kernel cache, which is measured separately below.
    """
    interp_sim = InterpSimulator(module)
    started = time.perf_counter()
    interp_sum = _drive(interp_sim, stimulus)
    interp_elapsed = time.perf_counter() - started

    compiled_sim = CompiledSimulator(module)
    started = time.perf_counter()
    compiled_sum = _drive(compiled_sim, stimulus)
    compiled_elapsed = time.perf_counter() - started

    assert interp_sum == compiled_sum, (
        f"engines diverged: interp {interp_sum:#x} vs "
        f"compiled {compiled_sum:#x}"
    )
    return interp_elapsed, compiled_elapsed


def test_compiled_engine_beats_interpreter(benchmark):
    module = _golden_sp_module()
    stimulus = _stimulus(CYCLES)

    rows = benchmark.pedantic(
        lambda: [_time_pair(module, stimulus) for _ in range(ROUNDS)],
        rounds=1,
        iterations=1,
    )
    best_interp = min(interp for interp, _compiled in rows)
    best_compiled = min(compiled for _interp, compiled in rows)
    speedup = best_interp / best_compiled
    assert speedup >= REQUIRED_SPEEDUP, (
        f"compiled engine only {speedup:.2f}x over the interpreter "
        f"(required >= {REQUIRED_SPEEDUP}x)"
    )

    benchmark.extra_info.update(
        cycles=CYCLES,
        interp_ms=round(best_interp * 1e3, 1),
        compiled_ms=round(best_compiled * 1e3, 1),
        interp_cycles_per_s=round(CYCLES / best_interp),
        compiled_cycles_per_s=round(CYCLES / best_compiled),
        speedup=round(speedup, 2),
    )
    lines = [
        "Compiled vs interpreted RTL simulation "
        f"(SP golden wrapper, {CYCLES} cycles of RTLShell-style "
        f"poke/settle/peek/step, best of {ROUNDS})",
        "",
        f"{'engine':>10} | {'ms/run':>8} {'cycles/s':>12}",
        "-" * 36,
        f"{'interp':>10} | {best_interp * 1e3:>8.1f} "
        f"{CYCLES / best_interp:>12.0f}",
        f"{'compiled':>10} | {best_compiled * 1e3:>8.1f} "
        f"{CYCLES / best_compiled:>12.0f}",
        "",
        f"speedup: {speedup:.2f}x (required >= {REQUIRED_SPEEDUP}x)",
    ]
    write_result("rtl_sim_engines.txt", "\n".join(lines))


def test_kernel_cache_amortizes_compilation(benchmark):
    """Re-simulating the same module shape must not re-pay lowering:
    the second construction hits the per-module plan memo, and a
    structurally identical clone hits the structural kernel cache."""
    module = _golden_sp_module()

    def build_twice():
        started = time.perf_counter()
        CompiledSimulator(module)
        cold = time.perf_counter() - started
        started = time.perf_counter()
        for _ in range(10):
            CompiledSimulator(module)
        warm = (time.perf_counter() - started) / 10
        return cold, warm

    cold, warm = benchmark.pedantic(build_twice, rounds=1, iterations=1)
    # The warm path skips elaboration + lowering + exec entirely; it
    # only allocates the environment and runs the initial settle.
    assert warm <= cold, (cold, warm)
    benchmark.extra_info.update(
        cold_us=round(cold * 1e6), warm_us=round(warm * 1e6)
    )
