"""Legacy setup shim: this environment has no `wheel` package, so PEP 660
editable installs cannot build; `pip install -e . --no-use-pep517
--no-build-isolation` (or plain `pip install -e .` with new pips) falls
back to `setup.py develop`, which needs this file.  All metadata lives in
pyproject.toml (PEP 621), which setuptools>=61 reads natively.
"""
from setuptools import setup

setup()
