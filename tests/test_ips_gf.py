"""GF(2^8) arithmetic: field axioms and polynomial algebra."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ips.gf import (
    FIELD_SIZE,
    GFError,
    gf_add,
    gf_div,
    gf_exp,
    gf_inv,
    gf_log,
    gf_mul,
    gf_pow,
    poly_add,
    poly_derivative,
    poly_divmod,
    poly_eval,
    poly_mul,
    poly_scale,
    poly_strip,
)

elements = st.integers(0, FIELD_SIZE - 1)
nonzero = st.integers(1, FIELD_SIZE - 1)


class TestFieldAxioms:
    @given(elements, elements)
    def test_add_commutative(self, a, b):
        assert gf_add(a, b) == gf_add(b, a)

    @given(elements, elements)
    def test_mul_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(elements, elements, elements)
    @settings(max_examples=200)
    def test_mul_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(elements, elements, elements)
    @settings(max_examples=200)
    def test_distributive(self, a, b, c):
        assert gf_mul(a, gf_add(b, c)) == gf_add(
            gf_mul(a, b), gf_mul(a, c)
        )

    @given(elements)
    def test_add_self_inverse(self, a):
        assert gf_add(a, a) == 0

    @given(elements)
    def test_mul_identity(self, a):
        assert gf_mul(a, 1) == a

    @given(elements)
    def test_mul_zero(self, a):
        assert gf_mul(a, 0) == 0

    @given(nonzero)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    @given(elements, nonzero)
    def test_div_is_mul_by_inverse(self, a, b):
        assert gf_div(a, b) == gf_mul(a, gf_inv(b))

    def test_zero_inverse_rejected(self):
        with pytest.raises(GFError):
            gf_inv(0)

    def test_division_by_zero_rejected(self):
        with pytest.raises(GFError):
            gf_div(5, 0)

    def test_out_of_range_rejected(self):
        with pytest.raises(GFError):
            gf_add(256, 0)
        with pytest.raises(GFError):
            gf_mul(-1, 0)


class TestLogsAndPowers:
    def test_exp_log_inverse(self):
        for a in range(1, FIELD_SIZE):
            assert gf_exp(gf_log(a)) == a

    def test_exp_periodicity(self):
        assert gf_exp(0) == 1
        assert gf_exp(255) == gf_exp(0)

    @given(nonzero, st.integers(-10, 300))
    @settings(max_examples=100)
    def test_pow_matches_repeated_mul(self, a, n):
        if n < 0:
            expected = gf_inv(gf_pow(a, -n))
        else:
            expected = 1
            for _ in range(n):
                expected = gf_mul(expected, a)
        assert gf_pow(a, n) == expected

    def test_pow_zero_cases(self):
        assert gf_pow(0, 0) == 1
        assert gf_pow(0, 5) == 0
        with pytest.raises(GFError):
            gf_pow(0, -1)

    def test_log_zero_rejected(self):
        with pytest.raises(GFError):
            gf_log(0)

    def test_primitive_element_generates_field(self):
        seen = {gf_exp(i) for i in range(255)}
        assert len(seen) == 255


polys = st.lists(elements, min_size=1, max_size=8)


class TestPolynomials:
    def test_strip(self):
        assert poly_strip([0, 0, 3, 1]) == [3, 1]
        assert poly_strip([0, 0]) == [0]
        assert poly_strip([]) == [0]

    @given(polys, polys)
    @settings(max_examples=100)
    def test_add_commutative(self, p, q):
        assert poly_add(p, q) == poly_add(q, p)

    @given(polys)
    def test_add_self_is_zero(self, p):
        assert poly_add(p, p) == [0]

    @given(polys, polys)
    @settings(max_examples=100)
    def test_mul_degree(self, p, q):
        p, q = poly_strip(p), poly_strip(q)
        product = poly_mul(p, q)
        if p != [0] and q != [0]:
            assert len(product) == len(p) + len(q) - 1

    @given(polys, polys, elements)
    @settings(max_examples=150)
    def test_eval_homomorphism(self, p, q, x):
        lhs = poly_eval(poly_mul(p, q), x)
        rhs = gf_mul(poly_eval(p, x), poly_eval(q, x))
        assert lhs == rhs

    @given(polys, polys)
    @settings(max_examples=100)
    def test_divmod_identity(self, p, q):
        q = poly_strip(q)
        if q == [0]:
            return
        quotient, remainder = poly_divmod(p, q)
        reconstructed = poly_add(poly_mul(quotient, q), remainder)
        assert reconstructed == poly_strip(p)

    def test_divmod_by_zero_rejected(self):
        with pytest.raises(GFError):
            poly_divmod([1, 2], [0])

    def test_derivative_char2(self):
        # d/dx (x^3 + x^2 + x + 1) = 3x^2 + 2x + 1 = x^2 + 1 in GF(2^8)
        assert poly_derivative([1, 1, 1, 1]) == [1, 0, 1]

    def test_scale(self):
        assert poly_scale([1, 2], 2) == [2, 4]
