"""Cycle-accurate two-phase simulator for the RTL IR.

Semantics (matching synthesizable single-clock RTL):

1. *settle* — evaluate every continuous assignment and ROM read in
   dependency (topological) order so all combinational signals reflect
   current register outputs and primary inputs;
2. *step* — sample every register's next-value/enable/reset expressions
   simultaneously, commit all register updates, then settle again.

The simulator elaborates the hierarchy first: instance ports become
aliases onto parent signals, so the whole design simulates in a single
flat environment.  This mirrors the flattening performed by
:mod:`repro.rtl.netlist`, keeping simulation and the area model
consistent with each other and with the emitted Verilog.

Three interchangeable engines implement these semantics:

* ``"compiled"`` (default) — :mod:`repro.rtl.compile_sim` lowers the
  flattened design to one straight-line Python ``settle``/``step``
  function pair, compiled once per module *shape* and cached;
* ``"interp"`` — the reference tree-walking evaluator below, kept as
  the semantic oracle the compiled engine is differentially tested
  against;
* ``"vectorized"`` — the lane-packed SWAR backend
  (:class:`~repro.rtl.compile_sim.VectorSimulator`), which advances W
  same-shape simulations per ``settle``/``step``.  Lane packing only
  pays off when a *batch* of simulations is driven together, so a
  scalar ``Simulator(design, engine="vectorized")`` request falls
  back to the compiled engine; the verify layer
  (:mod:`repro.verify.vectorize`) is what actually groups cases into
  lanes.

``Simulator(design)`` dispatches on the ``engine`` argument (or the
``REPRO_RTL_ENGINE`` environment variable); both engines expose the
identical ``poke``/``peek``/``peek_flat``/``settle``/``step``/``cycle``
surface.
"""

from __future__ import annotations

import os
from typing import Callable, Mapping

from .ast import Expr, Signal
from .module import Design, Module, Register, Rom

ENGINES = ("compiled", "interp", "vectorized")

DEFAULT_ENGINE = "compiled"


class SimulationError(RuntimeError):
    """Raised on combinational loops or unresolvable evaluation order."""


def resolve_engine(engine: str | None) -> str:
    """Normalize an engine request (None -> env override -> default)."""
    if engine is None:
        engine = os.environ.get("REPRO_RTL_ENGINE") or DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(
            f"unknown RTL engine {engine!r}; choose from {ENGINES}"
        )
    return engine


class _RenamedEnv(Mapping):
    """Read-only view of the flat environment under a local->flat rename."""

    __slots__ = ("_env", "_rename")

    def __init__(self, env: dict, rename: dict) -> None:
        self._env = env
        self._rename = rename

    def __getitem__(self, key: str) -> int:
        return self._env[self._rename[key]]

    def __iter__(self):
        return iter(self._rename)

    def __len__(self) -> int:
        return len(self._rename)


def _evaluator(
    expr: Expr, local: dict[int, str], env: dict[str, int]
) -> Callable[[], int]:
    """Bind ``expr`` to the flat environment through its local rename map."""
    rename = {signal.name: local[id(signal)] for signal in expr.signals()}
    view = _RenamedEnv(env, rename)
    return lambda: expr.evaluate(view)


class Simulator:
    """Flat two-phase simulator over a :class:`Design` (or bare module).

    Usage::

        sim = Simulator(top_module)
        sim.poke("reset", 1)
        sim.step()               # one rising clock edge
        value = sim.peek("data_out")

    Constructing ``Simulator(...)`` directly dispatches to the engine
    selected by ``engine`` (``"compiled"`` by default); instantiate
    :class:`InterpSimulator` or
    :class:`~repro.rtl.compile_sim.CompiledSimulator` to pin one.
    """

    engine = "abstract"

    def __new__(
        cls, design: Design | Module, engine: str | None = None
    ) -> "Simulator":
        if cls is Simulator:
            if resolve_engine(engine) == "interp":
                cls = InterpSimulator
            else:
                # "compiled", and the scalar fallback for "vectorized":
                # lane packing needs a whole batch, so a single-module
                # request runs on the compiled kernels it shares.
                from .compile_sim import CompiledSimulator

                cls = CompiledSimulator
        return object.__new__(cls)


class InterpSimulator(Simulator):
    """Reference tree-walking engine (the semantic oracle)."""

    engine = "interp"

    def __init__(
        self, design: Design | Module, engine: str | None = None
    ) -> None:
        if isinstance(design, Module):
            design = Design(design)
        self._env: dict[str, int] = {}
        self._widths: dict[str, int] = {}
        # (flat target, thunk, flat dependency names)
        self._comb: list[tuple[str, Callable[[], int], frozenset[str]]] = []
        # (flat target, reset thunk|None, reset value, enable thunk|None,
        #  next thunk)
        self._regs: list[
            tuple[
                str,
                Callable[[], int] | None,
                int,
                Callable[[], int] | None,
                Callable[[], int],
            ]
        ] = []
        self._top = design.top
        # name -> flat-name lookup for poke/peek, built once here: the
        # top module's signal names first (they win any collision),
        # then every hierarchical flat name mapping to itself.
        self._name_map: dict[str, str] = {}
        self._flatten(design.top, prefix="", bindings={})
        for flat in self._env:
            self._name_map.setdefault(flat, flat)
        self._order = self._schedule()
        self.cycle = 0
        self.settle()

    # -- elaboration -------------------------------------------------------

    def _flatten(
        self, module: Module, prefix: str, bindings: dict[int, str]
    ) -> None:
        local: dict[int, str] = dict(bindings)
        for signal in module.all_signals():
            if id(signal) in local:
                continue
            flat = prefix + signal.name
            local[id(signal)] = flat
            self._widths[flat] = signal.width
            self._env[flat] = 0
        if prefix == "":
            self._name_map = {
                signal.name: local[id(signal)]
                for signal in module.all_signals()
            }
        for assign in module.assigns:
            deps = frozenset(
                local[id(signal)] for signal in assign.expr.signals()
            )
            self._comb.append(
                (
                    local[id(assign.target)],
                    _evaluator(assign.expr, local, self._env),
                    deps,
                )
            )
        for rom in module.roms:
            deps = frozenset(
                local[id(signal)] for signal in rom.addr.signals()
            )
            addr_fn = _evaluator(rom.addr, local, self._env)
            self._comb.append(
                (
                    local[id(rom.data)],
                    (lambda fn=addr_fn, r=rom: r.read(fn())),
                    deps,
                )
            )
        for register in module.registers:
            reset_fn = (
                _evaluator(register.reset, local, self._env)
                if register.reset is not None
                else None
            )
            enable_fn = (
                _evaluator(register.enable, local, self._env)
                if register.enable is not None
                else None
            )
            self._regs.append(
                (
                    local[id(register.target)],
                    reset_fn,
                    register.reset_value,
                    enable_fn,
                    _evaluator(register.next, local, self._env),
                )
            )
        for instance in module.instances:
            child_bindings = {}
            for name, signal in instance.connections.items():
                port = instance.module.find_port(name)
                child_bindings[id(port.signal)] = local[id(signal)]
            self._flatten(
                instance.module,
                prefix=f"{prefix}{instance.name}.",
                bindings=child_bindings,
            )

    def _schedule(self) -> list[int]:
        """Topological order over combinational items; reject loops."""
        producers: dict[str, int] = {}
        for index, (target, _fn, _deps) in enumerate(self._comb):
            if target in producers:
                raise SimulationError(f"multiple drivers for {target!r}")
            producers[target] = index
        order: list[int] = []
        state = [0] * len(self._comb)  # 0 new, 1 visiting, 2 done

        def visit(i: int) -> None:
            if state[i] == 2:
                return
            if state[i] == 1:
                raise SimulationError(
                    f"combinational loop through {self._comb[i][0]!r}"
                )
            state[i] = 1
            for name in self._comb[i][2]:
                j = producers.get(name)
                if j is not None:
                    visit(j)
            state[i] = 2
            order.append(i)

        for i in range(len(self._comb)):
            visit(i)
        return order

    # -- environment access --------------------------------------------------

    def _flat_name(self, name: str) -> str:
        flat = self._name_map.get(name)
        if flat is None:
            raise KeyError(f"no signal named {name!r} in top module")
        return flat

    def poke(self, name: str, value: int) -> None:
        """Drive a top-level input (propagates at the next settle/step)."""
        flat = self._flat_name(name)
        self._env[flat] = value & ((1 << self._widths[flat]) - 1)

    def poke_settle(self, name: str, value: int) -> None:
        """Poke and immediately settle combinational logic."""
        self.poke(name, value)
        self.settle()

    def peek(self, name: str) -> int:
        """Read a top-level signal's settled value."""
        return self._env[self._flat_name(name)]

    def peek_flat(self, flat_name: str) -> int:
        """Read a hierarchical flat name, e.g. ``"sp0.state"``."""
        return self._env[flat_name]

    def flat_names(self) -> list[str]:
        return sorted(self._env)

    # -- execution -------------------------------------------------------------

    def settle(self) -> None:
        """Propagate combinational logic (single topological pass)."""
        env = self._env
        for i in self._order:
            target, fn, _deps = self._comb[i]
            env[target] = fn()

    def step(self, cycles: int = 1) -> None:
        """Advance the clock by ``cycles`` rising edges."""
        for _ in range(cycles):
            updates: list[tuple[str, int]] = []
            for target, reset_fn, reset_value, enable_fn, next_fn in self._regs:
                if reset_fn is not None and reset_fn():
                    updates.append((target, reset_value))
                    continue
                if enable_fn is not None and not enable_fn():
                    continue
                updates.append((target, next_fn()))
            for target, value in updates:
                self._env[target] = value
            self.cycle += 1
            self.settle()
