"""Reed-Solomon codec and its streaming pearl."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.wrappers import SPWrapper
from repro.ips.reed_solomon import (
    ReedSolomon,
    RSCode,
    RSDecoderPearl,
    RSError,
    generator_poly,
    rs_decoder_schedule,
)
from repro.ips.gf import poly_eval, gf_exp
from repro.lis.simulator import Simulation
from repro.lis.stream import burst_gaps
from repro.lis.system import System

SMALL = RSCode(15, 11)  # t = 2, fast for property tests
DVB = RSCode(204, 188)  # t = 8


class TestCodeParameters:
    def test_defaults(self):
        code = RSCode()
        assert (code.n, code.k, code.t) == (255, 239, 8)

    def test_invalid_rejected(self):
        with pytest.raises(RSError):
            RSCode(10, 10)
        with pytest.raises(RSError):
            RSCode(300, 200)
        with pytest.raises(RSError):
            RSCode(15, 10)  # odd parity count

    def test_generator_poly_roots(self):
        g = generator_poly(4)
        for i in range(4):
            assert poly_eval(g, gf_exp(i)) == 0
        assert poly_eval(g, gf_exp(4)) != 0


class TestEncoder:
    def test_systematic(self):
        rs = ReedSolomon(SMALL)
        msg = list(range(1, 12))
        cw = rs.encode(msg)
        assert cw[:11] == msg
        assert len(cw) == 15

    def test_codeword_has_zero_syndromes(self):
        rs = ReedSolomon(SMALL)
        cw = rs.encode([7] * 11)
        assert not any(rs.syndromes(cw))

    def test_zero_message(self):
        rs = ReedSolomon(SMALL)
        assert rs.encode([0] * 11) == [0] * 15

    def test_wrong_length_rejected(self):
        rs = ReedSolomon(SMALL)
        with pytest.raises(RSError):
            rs.encode([0] * 10)


class TestDecoder:
    @given(
        st.lists(st.integers(0, 255), min_size=11, max_size=11),
        st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_corrects_up_to_t_errors(self, msg, data):
        rs = ReedSolomon(SMALL)
        cw = rs.encode(msg)
        n_errors = data.draw(st.integers(0, SMALL.t))
        positions = data.draw(
            st.lists(
                st.integers(0, SMALL.n - 1),
                min_size=n_errors,
                max_size=n_errors,
                unique=True,
            )
        )
        corrupted = list(cw)
        for pos in positions:
            corrupted[pos] ^= data.draw(st.integers(1, 255))
        decoded, found = rs.decode(corrupted)
        assert decoded == cw
        assert found == len(positions)

    def test_clean_word_zero_errors(self):
        rs = ReedSolomon(SMALL)
        cw = rs.encode(list(range(11)))
        decoded, n = rs.decode(cw)
        assert decoded == cw
        assert n == 0

    def test_burst_error_correction(self):
        rs = ReedSolomon(DVB)
        random.seed(1)
        msg = [random.randrange(256) for _ in range(188)]
        cw = rs.encode(msg)
        corrupted = list(cw)
        for pos in range(50, 58):  # 8-symbol burst = t
            corrupted[pos] ^= 0xA5
        decoded, n = rs.decode(corrupted)
        assert decoded == cw
        assert n == 8

    def test_beyond_capability_detected(self):
        rs = ReedSolomon(SMALL)
        cw = rs.encode([1] * 11)
        corrupted = list(cw)
        random.seed(5)
        for pos in random.sample(range(15), 5):  # t = 2
            corrupted[pos] ^= random.randrange(1, 256)
        with pytest.raises(RSError):
            rs.decode(corrupted)

    def test_wrong_length_rejected(self):
        rs = ReedSolomon(SMALL)
        with pytest.raises(RSError):
            rs.decode([0] * 14)


class TestSchedule:
    def test_shape(self):
        schedule = rs_decoder_schedule(SMALL, decode_run=10)
        stats = schedule.stats()
        assert stats.ports == 3
        assert stats.waits == SMALL.n + SMALL.k + 1
        assert stats.run == 10

    def test_wait_dominated_like_paper(self):
        schedule = rs_decoder_schedule(RSCode(255, 239), decode_run=1)
        stats = schedule.stats()
        assert stats.waits > 400
        assert stats.run == 1


class TestPearlInSystem:
    def _run(self, code, words, gaps=None, cycles=6000):
        rs = ReedSolomon(code)
        stream = []
        expected = []
        for msg in words:
            cw = rs.encode(msg)
            corrupted = list(cw)
            corrupted[3] ^= 0x55  # single error per word
            stream.extend(corrupted)
            expected.append(msg)
        pearl = RSDecoderPearl("rs", code, decode_run=8)
        shell = SPWrapper(pearl)
        system = System("rs_sys")
        system.add_patient(shell)
        system.connect_source("src", stream, shell, "sym_in", gaps=gaps)
        sym_sink = system.connect_sink(shell, "sym_out", "sym_snk")
        err_sink = system.connect_sink(shell, "err_out", "err_snk")
        Simulation(system).run(cycles)
        return sym_sink.received, err_sink.received, expected

    def test_streaming_decode(self):
        words = [list(range(11)), [5] * 11]
        symbols, errors, expected = self._run(SMALL, words)
        assert symbols == [s for msg in expected for s in msg]
        assert errors == [1, 1]

    def test_streaming_with_jitter(self):
        words = [list(range(11))]
        symbols, errors, expected = self._run(
            SMALL, words, gaps=burst_gaps(3, 2)
        )
        assert symbols == expected[0]
        assert errors == [1]

    def test_uncorrectable_flagged(self):
        rs = ReedSolomon(SMALL)
        cw = rs.encode([9] * 11)
        corrupted = list(cw)
        for pos in (0, 4, 8, 12):  # 4 > t = 2
            corrupted[pos] ^= 0x11
        pearl = RSDecoderPearl("rs", SMALL, decode_run=4)
        shell = SPWrapper(pearl)
        system = System("rs_bad")
        system.add_patient(shell)
        system.connect_source("src", corrupted, shell, "sym_in")
        system.connect_sink(shell, "sym_out", "sym_snk")
        err_sink = system.connect_sink(shell, "err_out", "err_snk")
        Simulation(system).run(3000)
        assert err_sink.received == [-1]

    def test_pearl_reset(self):
        pearl = RSDecoderPearl("rs", SMALL)
        pearl._word = [1, 2, 3]
        pearl.on_reset()
        assert pearl._word == []
        assert pearl.local_cycle == 0
