"""Physical-synthesis flow and reporting (Table-1 formatting)."""

from .flow import synthesize
from .report import (
    PAPER_TABLE1,
    ComparisonRow,
    SynthesisReport,
    format_table1,
)

__all__ = [
    "ComparisonRow",
    "PAPER_TABLE1",
    "SynthesisReport",
    "format_table1",
    "synthesize",
]
