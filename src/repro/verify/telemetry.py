"""Campaign telemetry: spans, counters and gauges over an event bus.

A 10k-case campaign's only signal used to be one summary line — when
it was slow, retrying, or starving the corpus scheduler, nothing said
*where* time and faults went.  This module is the instrumentation
layer: a process-wide **session** collects timestamped records from
lightweight probes sprinkled through the pipeline and feeds two sinks,

* an append-only JSONL **event stream** (``repro verify --events``) —
  one record per line, written through :class:`EventWriter` with a
  header line and a torn-tail-tolerant reader (:func:`read_events`),
  mirroring the campaign journal's crash contract; and
* an in-memory :class:`Rollup` — per-stage span totals (with
  per-style breakdown), counters, gauges, per-worker fault tables and
  the slowest cases — exported as ``--metrics-json`` and rendered in
  the expanded end-of-run summary (:meth:`Rollup.render`).

Record kinds are plain dicts (pickle-safe, so the supervised pool can
relay worker-side records over its result pipes):

* ``span``  — ``{kind, name, t, dur_s, ...fields}``: a timed region
  (``generate``/``build``/``simulate``/``oracle``/``case``/
  ``shrink``); ``build`` and ``simulate`` spans carry a ``style``
  field, ``case`` and ``shrink`` spans a ``case`` index;
* ``count`` — ``{kind, name, t, n}``: a monotonic counter increment
  (``supervise.*``, ``fault.*``, ``corpus.*``, ``rtl.*``,
  ``shrink.*``);
* ``gauge`` — ``{kind, name, t, value}``: a point-in-time level;
* ``event`` — ``{kind, name, t, ...fields}``: a discrete occurrence
  (worker lifecycle, faults — chaos-injected ones tagged
  ``injected=true``).

Timestamps are ``time.monotonic()`` — on Linux ``CLOCK_MONOTONIC`` is
system-wide, so worker records order correctly against the parent's
and are rebased to the session start only at the sink boundary.

**Telemetry is liveness-only.**  Probes are module-level functions
that no-op (one global read) while no session is active, so outcomes,
coverage and journals are byte-identical with telemetry on or off,
and the off cost is bench-guarded (see
``benchmarks/bench_batch_verify.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Iterable, Mapping

__all__ = [
    "EVENTS_VERSION",
    "STAGE_SPANS",
    "EventWriter",
    "Rollup",
    "TelemetrySession",
    "activate",
    "active",
    "count",
    "deactivate",
    "emit_engine_delta",
    "engine_stats",
    "event",
    "gauge",
    "read_events",
    "render_compare",
    "render_report",
    "rollup_from_records",
    "span",
]

#: Event-stream schema version (the header line's ``version`` field).
EVENTS_VERSION = 1

#: Span names whose totals partition the batch's wall clock:
#: ``generate`` (topology scheduling), ``build`` (system construction,
#: per style), ``simulate`` (cycle loop, per style), ``oracle`` (the
#: check pipeline) and ``shrink`` (reproducer minimization).  ``case``
#: spans *wrap* build/simulate/oracle and are excluded so the stage
#: total never double-counts.
STAGE_SPANS = ("generate", "build", "simulate", "oracle", "shrink")

#: Cap on slowest-case entries retained in a rollup.
_SLOWEST_KEEP = 10


# -- the session and its probes ------------------------------------------------


class Rollup:
    """Streaming aggregation of telemetry records.

    Built incrementally (:meth:`add` per record) so a session never
    has to retain its full event list just to produce
    ``--metrics-json``; :func:`read_events` output can be folded
    through the same method to aggregate a stream after the fact.
    """

    __slots__ = (
        "spans", "counters", "gauges", "events", "workers", "_slowest",
    )

    def __init__(self) -> None:
        # name -> {"count", "total_s", "by_style": {style: {...}}}
        self.spans: dict[str, dict] = {}
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.events: dict[str, int] = {}
        # pid -> {"spawn"/"crash"/"timeout"/"retry": count}
        self.workers: dict[int, dict[str, int]] = {}
        self._slowest: list[tuple[float, int, int]] = []

    def add(self, record: Mapping[str, Any]) -> None:
        kind = record.get("kind")
        name = record.get("name", "")
        if kind == "span":
            dur = float(record.get("dur_s", 0.0))
            bucket = self.spans.setdefault(
                name, {"count": 0, "total_s": 0.0, "by_style": {}}
            )
            bucket["count"] += 1
            bucket["total_s"] += dur
            style = record.get("style")
            if style is not None:
                sub = bucket["by_style"].setdefault(
                    style, {"count": 0, "total_s": 0.0}
                )
                sub["count"] += 1
                sub["total_s"] += dur
            if name == "case" and "case" in record:
                self._slowest.append(
                    (dur, int(record["case"]), int(record.get("seed", 0)))
                )
                if len(self._slowest) > 4 * _SLOWEST_KEEP:
                    self._slowest.sort(reverse=True)
                    del self._slowest[_SLOWEST_KEEP:]
        elif kind == "count":
            self.counters[name] = (
                self.counters.get(name, 0) + record.get("n", 1)
            )
        elif kind == "gauge":
            self.gauges[name] = record.get("value", 0)
        elif kind == "event":
            self.events[name] = self.events.get(name, 0) + 1
            pid = record.get("pid")
            if pid is not None and name.startswith("supervise."):
                table = self.workers.setdefault(int(pid), {})
                what = name.removeprefix("supervise.")
                table[what] = table.get(what, 0) + 1

    def stage_total_s(self) -> float:
        """Summed duration of the :data:`STAGE_SPANS` — the portion of
        the batch the instrumentation accounts for."""
        return sum(
            self.spans.get(name, {}).get("total_s", 0.0)
            for name in STAGE_SPANS
        )

    def slowest_cases(
        self, top: int = _SLOWEST_KEEP
    ) -> list[tuple[float, int, int]]:
        """Up to ``top`` ``(dur_s, case index, seed)`` triples, slowest
        first."""
        return sorted(self._slowest, reverse=True)[:top]

    def to_dict(self, wall_s: float | None = None) -> dict:
        """The ``--metrics-json`` document (JSON-serializable, stable
        key order under ``sort_keys``)."""
        return {
            "version": EVENTS_VERSION,
            "wall_s": wall_s,
            "stage_total_s": round(self.stage_total_s(), 6),
            "spans": {
                name: {
                    "count": bucket["count"],
                    "total_s": round(bucket["total_s"], 6),
                    "by_style": {
                        style: {
                            "count": sub["count"],
                            "total_s": round(sub["total_s"], 6),
                        }
                        for style, sub in sorted(
                            bucket["by_style"].items()
                        )
                    },
                }
                for name, bucket in sorted(self.spans.items())
            },
            "counters": {
                name: round(value, 6)
                for name, value in sorted(self.counters.items())
            },
            "gauges": dict(sorted(self.gauges.items())),
            "events": dict(sorted(self.events.items())),
            "workers": {
                str(pid): dict(sorted(table.items()))
                for pid, table in sorted(self.workers.items())
            },
            "slowest_cases": [
                {"case": index, "seed": seed, "dur_s": round(dur, 6)}
                for dur, index, seed in self.slowest_cases()
            ],
        }

    def render(self, wall_s: float | None = None) -> str:
        """The expanded end-of-run telemetry summary."""
        lines = []
        stage_total = self.stage_total_s()
        if wall_s is not None and wall_s > 0:
            lines.append(
                f"telemetry: stage spans total {stage_total:.2f}s "
                f"({100.0 * stage_total / wall_s:.0f}% of "
                f"{wall_s:.2f}s wall clock; parallel stages may "
                "exceed it)"
            )
        else:
            lines.append(
                f"telemetry: stage spans total {stage_total:.2f}s"
            )
        parts = []
        for name in STAGE_SPANS:
            bucket = self.spans.get(name)
            if bucket is not None:
                parts.append(
                    f"{name} {bucket['total_s']:.2f}s"
                    f" ({bucket['count']})"
                )
        if parts:
            lines.append("  " + " | ".join(parts))
        simulate = self.spans.get("simulate")
        if simulate and simulate["by_style"]:
            total = simulate["total_s"] or 1.0
            shares = ", ".join(
                f"{style} {sub['total_s']:.2f}s"
                f" ({100.0 * sub['total_s'] / total:.0f}%)"
                for style, sub in sorted(
                    simulate["by_style"].items(),
                    key=lambda kv: (-kv[1]["total_s"], kv[0]),
                )
            )
            lines.append(f"  simulate by style: {shares}")
        if self.workers:
            spawns = sum(t.get("spawn", 0) for t in self.workers.values())
            crashes = sum(t.get("crash", 0) for t in self.workers.values())
            timeouts = sum(
                t.get("timeout", 0) for t in self.workers.values()
            )
            retries = sum(t.get("retry", 0) for t in self.workers.values())
            lines.append(
                f"  workers: {spawns} spawned, {crashes} crash(es), "
                f"{timeouts} timeout(s), {retries} retr"
                f"{'y' if retries == 1 else 'ies'}"
            )
        hits = self.counters.get("rtl.cache.hits", 0)
        misses = self.counters.get("rtl.cache.misses", 0)
        if hits or misses:
            rate = 100.0 * hits / (hits + misses)
            line = (
                f"  rtl kernel cache: {hits:.0f} hit(s) / "
                f"{misses:.0f} miss(es) ({rate:.0f}%), "
                f"{self.counters.get('rtl.cache.compile_ms', 0):.1f}ms "
                "compiling"
            )
            packed = self.counters.get("rtl.vector.packed", 0)
            fallback = self.counters.get("rtl.vector.fallback", 0)
            if packed or fallback:
                line += (
                    f"; vector comb: {packed:.0f} packed / "
                    f"{fallback:.0f} lane-fallback"
                )
            lines.append(line)
        tournaments = self.counters.get("corpus.tournaments", 0)
        if tournaments:
            mutants = self.counters.get("corpus.mutant_won", 0)
            lines.append(
                f"  corpus: {tournaments:.0f} tournament(s), mutants "
                f"won {mutants:.0f}; fresh-bin yield by op: "
                + (_render_op_yield(self.counters) or "none")
            )
        injected = self.counters.get("fault.injected", 0)
        organic = self.counters.get("fault.organic", 0)
        if injected or organic:
            lines.append(
                f"  faults: {injected:.0f} injected, "
                f"{organic:.0f} organic"
            )
        attempts = self.counters.get("shrink.attempts", 0)
        budget = self.counters.get("shrink.budget", 0)
        if budget:
            lines.append(
                f"  shrink: {attempts:.0f}/{budget:.0f} candidate "
                "executions used"
            )
        return "\n".join(lines)


def _render_op_yield(counters: Mapping[str, float]) -> str:
    """``op won/candidates (+fresh-bins)`` pairs, most productive op
    first."""
    ops: dict[str, dict[str, float]] = {}
    for name, value in counters.items():
        if not name.startswith("corpus.op."):
            continue
        _, _, rest = name.partition("corpus.op.")
        op, _, what = rest.rpartition(".")
        if op:
            ops.setdefault(op, {})[what] = value
    parts = []
    for op, stats in sorted(
        ops.items(),
        key=lambda kv: (-kv[1].get("fresh_bins", 0), kv[0]),
    ):
        parts.append(
            f"{op} {stats.get('won', 0):.0f}/"
            f"{stats.get('candidates', 0):.0f}"
            f" (+{stats.get('fresh_bins', 0):.0f} bins)"
        )
    return ", ".join(parts)


class TelemetrySession:
    """One process's (or one worker task's) telemetry collection.

    The parent session streams records into its :class:`Rollup` and,
    when attached, an :class:`EventWriter`; a worker-side session is
    ``buffered`` instead — it retains the raw records so the worker
    loop can :meth:`drain` them into the result envelope the
    supervised pool relays back.
    """

    __slots__ = ("t0", "rollup", "writer", "buffer")

    def __init__(self, buffered: bool = False) -> None:
        self.t0 = time.monotonic()
        self.rollup = Rollup()
        self.writer: EventWriter | None = None
        self.buffer: list[dict] | None = [] if buffered else None

    def attach_writer(self, writer: "EventWriter") -> None:
        self.writer = writer

    def add(self, record: dict) -> None:
        self.rollup.add(record)
        if self.buffer is not None:
            self.buffer.append(record)
        if self.writer is not None:
            self.writer.write(record)

    def drain(self) -> list[dict]:
        """Hand over (and clear) the buffered records — the worker
        loop's per-task relay payload."""
        records, self.buffer = self.buffer or [], []
        return records


_active: TelemetrySession | None = None


def active() -> TelemetrySession | None:
    """The process's active session, or ``None`` (telemetry off)."""
    return _active


def activate(session: TelemetrySession) -> TelemetrySession:
    global _active
    _active = session
    return session


def deactivate() -> None:
    global _active
    _active = None


class _NullSpan:
    """The no-session span: a shared, allocation-free no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("_session", "_name", "_fields", "_start")

    def __init__(
        self, session: TelemetrySession, name: str, fields: dict
    ) -> None:
        self._session = session
        self._name = name
        self._fields = fields

    def __enter__(self) -> "_Span":
        self._start = time.monotonic()
        return self

    def __exit__(self, *_exc) -> bool:
        record = {
            "kind": "span",
            "name": self._name,
            "t": self._start,
            "dur_s": time.monotonic() - self._start,
        }
        record.update(self._fields)
        self._session.add(record)
        return False


def span(name: str, **fields: Any):
    """Context manager timing one region; a shared no-op when no
    session is active."""
    session = _active
    if session is None:
        return _NULL_SPAN
    return _Span(session, name, fields)


def count(name: str, n: float = 1) -> None:
    session = _active
    if session is not None:
        session.add(
            {"kind": "count", "name": name, "t": time.monotonic(), "n": n}
        )


def gauge(name: str, value: float) -> None:
    session = _active
    if session is not None:
        session.add(
            {
                "kind": "gauge",
                "name": name,
                "t": time.monotonic(),
                "value": value,
            }
        )


def event(name: str, **fields: Any) -> None:
    session = _active
    if session is not None:
        record = {"kind": "event", "name": name, "t": time.monotonic()}
        record.update(fields)
        session.add(record)


# -- engine-counter bridging ---------------------------------------------------


def engine_stats() -> dict[str, float]:
    """Snapshot of :func:`repro.rtl.compile_sim.cache_stats` (imported
    lazily so probes never drag the RTL engine in)."""
    from ..rtl.compile_sim import cache_stats

    return cache_stats()


def emit_engine_delta(before: Mapping[str, float]) -> None:
    """Emit the engine-counter movement since ``before`` as
    ``rtl.cache.*`` / ``rtl.vector.*`` counts (only keys that moved)."""
    if _active is None:
        return
    after = engine_stats()
    for key, value in after.items():
        delta = value - before.get(key, 0)
        if delta:
            group = "vector" if key.startswith("vector_") else "cache"
            count(
                f"rtl.{group}.{key.removeprefix('vector_')}", delta
            )


# -- the JSONL sink ------------------------------------------------------------


class EventWriter:
    """Append-only JSONL event stream.

    Line one is a header (``kind="header"``, schema version, run
    metadata); every subsequent line is one record with its timestamp
    rebased to the session start.  Lines are flushed as written and
    the file is fsynced on :meth:`close`, so a crash mid-record can
    lose at most a torn final line — which :func:`read_events`
    tolerates exactly like the campaign journal's loader.
    """

    def __init__(
        self,
        path: str | Path,
        t0: float,
        meta: Mapping[str, Any] | None = None,
    ) -> None:
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self.t0 = t0
        self._handle = self.path.open("w", encoding="utf-8")
        header = {
            "kind": "header",
            "version": EVENTS_VERSION,
            "meta": dict(meta or {}),
        }
        self._handle.write(json.dumps(header, sort_keys=True) + "\n")
        self._handle.flush()

    def write(self, record: Mapping[str, Any]) -> None:
        if self._handle.closed:
            return
        rebased = dict(record)
        rebased["t"] = round(float(rebased.get("t", self.t0)) - self.t0, 6)
        self._handle.write(json.dumps(rebased, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Flush, fsync and close (idempotent) — the clean tail the
        interrupted path promises."""
        if self._handle.closed:
            return
        self._handle.flush()
        import os

        os.fsync(self._handle.fileno())
        self._handle.close()


def read_events(path: str | Path) -> tuple[dict | None, list[dict]]:
    """Load an event stream: ``(header, records)``.

    Tolerates a torn tail — parsing stops at the first incomplete or
    unparseable line, exactly like
    :meth:`repro.verify.campaign.CampaignJournal` recovery — and
    returns ``(None, [])`` for a file whose first line is not a valid
    header.
    """
    path = Path(path)
    header: dict | None = None
    records: list[dict] = []
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError:
        return None, []
    for index, line in enumerate(raw.split("\n")):
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            break  # torn tail: keep everything before it
        if not isinstance(record, dict):
            break
        if index == 0:
            if record.get("kind") != "header":
                return None, []
            header = record
            continue
        records.append(record)
    return header, records


# -- `repro report` rendering --------------------------------------------------


def rollup_from_records(records: Iterable[Mapping[str, Any]]) -> Rollup:
    """Fold a loaded event stream back into a :class:`Rollup`."""
    rollup = Rollup()
    for record in records:
        rollup.add(record)
    return rollup


def _stream_wall_s(records: list[dict]) -> float:
    """Observed wall clock of a loaded stream: the latest record end
    (timestamps are already session-relative in the file)."""
    wall = 0.0
    for record in records:
        t = float(record.get("t", 0.0))
        wall = max(wall, t + float(record.get("dur_s", 0.0)))
    return wall


def render_report(
    header: dict | None, records: list[dict], top: int = 10
) -> str:
    """The ``repro report events.jsonl`` analysis: stage breakdown,
    per-style time share, slowest cases, fault timeline and
    mutation-operator yield."""
    rollup = rollup_from_records(records)
    wall = _stream_wall_s(records)
    meta = (header or {}).get("meta", {})
    described = ", ".join(
        f"{key} {meta[key]}" for key in sorted(meta) if meta[key] is not None
    )
    lines = [
        f"telemetry report: {len(records)} event(s), "
        f"~{wall:.2f}s observed"
        + (f" ({described})" if described else "")
    ]
    lines.append("stage breakdown:")
    stage_total = rollup.stage_total_s()
    for name in STAGE_SPANS:
        bucket = rollup.spans.get(name)
        if bucket is None:
            continue
        share = (
            100.0 * bucket["total_s"] / stage_total if stage_total else 0.0
        )
        lines.append(
            f"  {name:<9} {bucket['total_s']:>8.2f}s  {share:5.1f}%  "
            f"({bucket['count']} span(s))"
        )
    lines.append(f"  {'total':<9} {stage_total:>8.2f}s")
    simulate = rollup.spans.get("simulate", {"by_style": {}})
    if simulate["by_style"]:
        lines.append("per-style simulate time:")
        total = simulate.get("total_s", 0.0) or 1.0
        for style, sub in sorted(
            simulate["by_style"].items(),
            key=lambda kv: (-kv[1]["total_s"], kv[0]),
        ):
            lines.append(
                f"  {style:<13} {sub['total_s']:>8.2f}s  "
                f"{100.0 * sub['total_s'] / total:5.1f}%  "
                f"({sub['count']} run(s))"
            )
    slowest = rollup.slowest_cases(top)
    if slowest:
        lines.append(f"slowest cases (top {min(top, len(slowest))}):")
        for dur, index, seed in slowest:
            lines.append(
                f"  case {index} (seed {seed}): {dur:.3f}s"
            )
    timeline = [
        record
        for record in records
        if record.get("kind") == "event"
        and (
            record.get("name", "").startswith("supervise.")
            or record.get("name", "").startswith("fault")
        )
    ]
    if timeline:
        lines.append("fault timeline:")
        for record in sorted(
            timeline, key=lambda r: float(r.get("t", 0.0))
        ):
            extra = ", ".join(
                f"{key}={record[key]}"
                for key in ("case", "pid", "attempts", "injected", "detail")
                if key in record
            )
            lines.append(
                f"  +{float(record.get('t', 0.0)):.3f}s "
                f"{record.get('name')}"
                + (f" ({extra})" if extra else "")
            )
    op_yield = _render_op_yield(rollup.counters)
    if op_yield:
        lines.append(f"mutation-operator yield (won/candidates): {op_yield}")
    return "\n".join(lines)


def render_compare(
    old: tuple[dict | None, list[dict]],
    new: tuple[dict | None, list[dict]],
    labels: tuple[str, str] = ("old", "new"),
) -> str:
    """Run-over-run comparison of two event streams: per-stage totals
    with ratios (regression markers past 1.25x), fault/case counts."""
    rollups = (
        rollup_from_records(old[1]), rollup_from_records(new[1])
    )
    lines = [
        f"telemetry compare: {labels[0]} ({len(old[1])} events) vs "
        f"{labels[1]} ({len(new[1])} events)"
    ]
    for name in STAGE_SPANS + ("case",):
        before = rollups[0].spans.get(name, {}).get("total_s", 0.0)
        after = rollups[1].spans.get(name, {}).get("total_s", 0.0)
        if not before and not after:
            continue
        if before > 0:
            ratio = f"{after / before:5.2f}x"
            flag = (
                "  <-- REGRESSION"
                if after > before * 1.25 and after - before > 0.05
                else ""
            )
        else:
            ratio, flag = "  new", ""
        lines.append(
            f"  {name:<9} {before:>8.2f}s -> {after:>8.2f}s  "
            f"{ratio}{flag}"
        )
    for counter in ("fault.injected", "fault.organic", "shrink.attempts"):
        before = rollups[0].counters.get(counter, 0)
        after = rollups[1].counters.get(counter, 0)
        if before or after:
            lines.append(
                f"  {counter:<16} {before:.0f} -> {after:.0f}"
            )
    cases = (
        rollups[0].spans.get("case", {}).get("count", 0),
        rollups[1].spans.get("case", {}).get("count", 0),
    )
    if any(cases):
        lines.append(f"  case spans       {cases[0]} -> {cases[1]}")
    return "\n".join(lines)
