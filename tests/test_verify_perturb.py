"""Metamorphic latency-perturbation verification.

Covers the variant generator (`repro.sched.generate.derive_variants`),
the perturbation oracle (`repro.verify.perturb`), its coverage axes,
the variant-pair shrinker, the `coverage-diff` trend tool, and the CLI
threading (`repro verify --perturb K`, reproducer replay).
"""

from __future__ import annotations

import functools
import json
from dataclasses import replace

import pytest

from repro.cli import main
from repro.sched.generate import (
    PERTURB_KINDS,
    PROFILE_PRESETS,
    TopologyVariant,
    derive_variants,
    random_topology,
    topology_from_dict,
    topology_to_dict,
    variant_from_dict,
    variant_to_dict,
)
from repro.verify import (
    BatchConfig,
    CoverageReport,
    VerifyCase,
    case_variants,
    diff_coverage,
    make_cases,
    run_case,
    run_variant,
    shrink_case,
)
from repro.verify.perturb import reference_style


def _case(topology, **kwargs):
    defaults = dict(
        index=0, seed=topology.seed, cycles=200, topology=topology
    )
    defaults.update(kwargs)
    return VerifyCase(**defaults)


def _feedback_topology():
    """A seeded topology that actually has credit-marked feedback."""
    for seed in range(200):
        topology = random_topology(seed)
        if topology.has_feedback and topology.sinks:
            return topology
    raise AssertionError("no feedback topology in the first 200 seeds")


# -- derive_variants -----------------------------------------------------------


class TestDeriveVariants:
    def test_deterministic_per_seed_and_k(self):
        topology = random_topology(11)
        first = derive_variants(topology, 5, seed=11)
        second = derive_variants(topology, 5, seed=11)
        assert first == second

    def test_smaller_draws_are_prefixes(self):
        """Variant i of a K-variant draw is independent of K, so a
        shrunk perturb count replays the same leading variants."""
        topology = random_topology(11)
        assert (
            derive_variants(topology, 2, seed=11)
            == derive_variants(topology, 5, seed=11)[:2]
        )

    def test_seed_changes_variants(self):
        topology = random_topology(11)
        assert derive_variants(topology, 3, seed=11) != derive_variants(
            topology, 3, seed=12
        )

    def test_kinds_round_robin(self):
        topology = random_topology(3)
        plain = derive_variants(topology, 4, seed=3)
        assert [v.kind for v in plain] == [
            "resegment", "pipeline", "resegment", "pipeline",
        ]
        with_fp = derive_variants(topology, 4, seed=3, floorplan=True)
        assert [v.kind for v in with_fp] == [
            "resegment", "pipeline", "floorplan", "resegment",
        ]
        assert [v.label for v in with_fp] == [
            "resegment0", "pipeline1", "floorplan2", "resegment3",
        ]

    def test_only_latencies_change(self):
        """Processes, wiring, markings, jitter and backpressure are
        invariant across every perturbation kind."""
        topology = _feedback_topology()
        for variant in derive_variants(
            topology, 6, seed=topology.seed, floorplan=True
        ):
            perturbed = variant.topology
            assert perturbed.processes == topology.processes
            assert perturbed.port_depth == topology.port_depth
            assert perturbed.traffic == topology.traffic
            for old, new in zip(topology.channels, perturbed.channels):
                assert (old.producer, old.out_port) == (
                    new.producer, new.out_port
                )
                assert (old.consumer, old.in_port) == (
                    new.consumer, new.in_port
                )
                assert new.tokens == old.tokens
            for old, new in zip(topology.sources, perturbed.sources):
                assert replace(new, latency=old.latency) == old
            for old, new in zip(topology.sinks, perturbed.sinks):
                assert replace(new, latency=old.latency) == old

    def test_feedback_credits_preserved(self):
        """Reset markings (loop credits) survive every kind, and the
        pipeline kind leaves marked channels' latency alone too."""
        topology = _feedback_topology()
        marked = [ch for ch in topology.channels if ch.tokens > 0]
        assert marked
        for variant in derive_variants(
            topology, 6, seed=topology.seed, floorplan=True
        ):
            for old, new in zip(
                topology.channels, variant.topology.channels
            ):
                assert new.tokens == old.tokens
                if variant.kind == "pipeline" and old.tokens > 0:
                    assert new.latency == old.latency

    def test_latency_bounds(self):
        topology = random_topology(5, PROFILE_PRESETS["soc"])
        for variant in derive_variants(
            topology, 9, seed=5, floorplan=True, max_latency=6
        ):
            perturbed = variant.topology
            latencies = (
                [ch.latency for ch in perturbed.channels]
                + [src.latency for src in perturbed.sources]
                + [snk.latency for snk in perturbed.sinks]
            )
            assert all(1 <= lat <= 6 for lat in latencies)

    def test_pipeline_adds_forward_latency(self):
        topology = random_topology(11)
        variant = derive_variants(topology, 2, seed=11)[1]
        assert variant.kind == "pipeline"
        forward = [
            (old, new)
            for old, new in zip(
                topology.channels, variant.topology.channels
            )
            if old.tokens == 0
        ]
        assert all(new.latency >= old.latency for old, new in forward)

    def test_floorplan_variant_carries_clock(self):
        topology = random_topology(11)
        variants = derive_variants(topology, 3, seed=11, floorplan=True)
        by_kind = {v.kind: v for v in variants}
        assert by_kind["floorplan"].clock_period_ns in (
            1.0, 1.5, 2.0, 3.0
        )
        assert by_kind["resegment"].clock_period_ns is None

    def test_variant_names_distinct(self):
        topology = random_topology(11)
        names = [
            v.topology.name
            for v in derive_variants(topology, 4, seed=11)
        ]
        assert len(set(names)) == 4
        assert all(name.startswith(topology.name) for name in names)

    def test_bad_arguments(self):
        topology = random_topology(0)
        with pytest.raises(ValueError):
            derive_variants(topology, -1)
        with pytest.raises(ValueError):
            derive_variants(topology, 1, max_latency=0)

    def test_zero_variants(self):
        assert derive_variants(random_topology(0), 0) == ()


class TestVariantJson:
    def test_perturbed_topology_round_trip(self):
        topology = _feedback_topology()
        for variant in derive_variants(
            topology, 3, seed=topology.seed, floorplan=True
        ):
            data = json.loads(
                json.dumps(topology_to_dict(variant.topology))
            )
            assert topology_from_dict(data) == variant.topology

    def test_variant_round_trip(self):
        topology = random_topology(9)
        for variant in derive_variants(
            topology, 3, seed=9, floorplan=True
        ):
            data = json.loads(json.dumps(variant_to_dict(variant)))
            assert variant_from_dict(data) == variant


# -- the metamorphic oracle ----------------------------------------------------


class TestPerturbOracle:
    @pytest.mark.parametrize("seed", [0, 1, 3, 7, 19, 42])
    def test_stream_invariance_holds(self, seed):
        """The repo's wrappers really are latency-insensitive: every
        perturbed sibling produces identical sink streams."""
        topology = random_topology(seed)
        outcome = run_case(
            _case(topology, styles=("fsm", "sp"), perturb=3)
        )
        assert outcome.ok, [str(d) for d in outcome.divergences]

    def test_floorplan_variants_verify(self):
        topology = random_topology(4)
        outcome = run_case(
            _case(
                topology,
                styles=("fsm",),
                perturb=3,
                perturb_floorplan=True,
            )
        )
        assert outcome.ok, [str(d) for d in outcome.divergences]

    def test_perturb_adds_checks(self):
        topology = random_topology(7)
        plain = run_case(_case(topology, styles=("fsm",)))
        perturbed = run_case(
            _case(topology, styles=("fsm",), perturb=3)
        )
        assert perturbed.checks > plain.checks

    def test_case_variants_derives_and_pins(self):
        topology = random_topology(7)
        derived = case_variants(_case(topology, perturb=2))
        assert derived == derive_variants(topology, 2, seed=7)
        pinned = case_variants(
            _case(topology, perturb=5, variants=derived[:1])
        )
        assert pinned == derived[:1]
        assert case_variants(_case(topology)) == ()

    def test_reference_style_prefers_fsm(self):
        assert reference_style(("sp", "fsm", "rtl-sp")) == "fsm"
        assert reference_style(("sp", "combinational")) == "sp"
        assert reference_style(("shiftreg", "rtl-shiftreg")) == "fsm"

    def test_run_variant_collects_relay_telemetry(self):
        topology = random_topology(7)
        deep = derive_variants(topology, 2, seed=7)[1].topology
        run = run_variant(deep, "fsm", cycles=200)
        assert run.error is None
        assert run.relay_peak is not None
        station, depth = run.relay_peak
        assert 0 <= depth <= 2
        assert ".rs" in station

    def test_zero_progress_variant_is_vacuous_not_green(self):
        """A variant that moves no tokens while the base did (e.g. it
        deadlocked under deeper segmentation) must fail, not pass its
        stream checks over empty data."""
        topology, _bad = _divergent_setup()
        variant = derive_variants(topology, 1, seed=topology.seed)[0]
        starved = TopologyVariant(
            kind=variant.kind,
            index=variant.index,
            topology=replace(
                variant.topology,
                sinks=tuple(
                    replace(snk, stalls=(False,))
                    for snk in variant.topology.sinks
                ),
            ),
        )
        outcome = run_case(
            _case(topology, styles=("fsm",), variants=(starved,))
        )
        assert not outcome.ok
        divergence = next(
            d
            for d in outcome.divergences
            if d.check == "perturb-streams"
        )
        assert "moved no tokens" in divergence.detail

    def test_crashed_reference_style_not_reported_twice(self):
        """When the reference style already crashed in the style loop,
        the perturbation pass skips instead of re-running the crash
        and duplicating the exception divergence."""
        topology = random_topology(7)
        outcome = run_case(
            _case(topology, styles=("bogus",), perturb=2)
        )
        assert not outcome.ok
        exceptions = [
            d for d in outcome.divergences if d.check == "exception"
        ]
        assert len(exceptions) == 1

    def test_regular_traffic_cases_accept_perturbation(self):
        topology = random_topology(2, PROFILE_PRESETS["regular"])
        outcome = run_case(
            _case(topology, styles=("fsm", "shiftreg"), perturb=2)
        )
        assert outcome.ok, [str(d) for d in outcome.divergences]


def _tampered_variant(topology):
    """A structurally legal variant whose first source stream was
    corrupted (every token value shifted by one) — the injected fault
    the metamorphic stream check must catch."""
    variant = derive_variants(topology, 1, seed=topology.seed)[0]
    sources = list(variant.topology.sources)
    assert sources, "expected at least one source"
    sources[0] = replace(sources[0], base=sources[0].base + 1)
    return TopologyVariant(
        kind=variant.kind,
        index=variant.index,
        topology=replace(variant.topology, sources=tuple(sources)),
    )


@functools.lru_cache(maxsize=1)
def _divergent_setup():
    """A seeded (topology, tampered variant) pair whose injected fault
    provably reaches a sink within the test horizon."""
    for seed in range(100):
        topology = random_topology(seed)
        if not (topology.sources and topology.sinks):
            continue
        bad = _tampered_variant(topology)
        outcome = run_case(
            _case(topology, styles=("fsm",), variants=(bad,))
        )
        if any(
            d.check == "perturb-streams" for d in outcome.divergences
        ):
            return topology, bad
    raise AssertionError(
        "no seed in the first 100 propagates the injected fault"
    )


class TestInjectedDivergence:
    def test_corrupted_variant_is_caught(self):
        topology, bad = _divergent_setup()
        outcome = run_case(
            _case(topology, styles=("fsm",), variants=(bad,))
        )
        assert not outcome.ok
        divergence = next(
            d
            for d in outcome.divergences
            if d.check == "perturb-streams"
        )
        assert divergence.style == bad.label

    def test_shrinker_reduces_to_minimal_variant_pair(self):
        """A failing perturbation shrinks to base + exactly the one
        corrupt variant; the healthy variants are dropped."""
        topology, bad = _divergent_setup()
        good = derive_variants(topology, 3, seed=topology.seed + 1)
        case = _case(
            topology,
            styles=("fsm",),
            variants=good[:1] + (bad,) + good[1:],
            cycles=200,
        )
        assert not run_case(case).ok
        minimal = shrink_case(case)
        assert minimal.variants is not None
        assert len(minimal.variants) == 1
        assert minimal.variants[0].topology == bad.topology
        assert not run_case(minimal).ok

    def test_healthy_perturbation_shrinks_away(self):
        """When the failure has nothing to do with perturbation, the
        variant set shrinks to empty (perturbation exonerated)."""
        topology = _feedback_topology()
        case = _case(
            topology,
            styles=("fsm",),
            perturb=2,
            # An impossible style forces a non-perturb failure.
            cycles=60,
        )
        broken = replace(case, styles=("fsm", "no-such-style"))
        assert not run_case(broken).ok
        minimal = shrink_case(broken, max_attempts=40)
        assert minimal.variants is not None
        assert minimal.variants == ()


# -- coverage axes and trend diffing ------------------------------------------


class TestPerturbCoverage:
    def test_perturb_axes_reported(self):
        config = BatchConfig(
            cases=4, seed=0, styles=("fsm",), perturb=3,
            perturb_floorplan=True, shrink=False,
        )
        report = CoverageReport.from_cases(make_cases(config))
        data = report.to_dict()["histograms"]
        assert data["perturb_variants"] == {"3": 4}
        assert set(data["perturb_kinds"]) <= set(PERTURB_KINDS)
        assert sum(data["perturb_kinds"].values()) == 12
        assert data["perturb_max_latency"]

    def test_unperturbed_batches_keep_stable_json(self):
        config = BatchConfig(
            cases=4, seed=0, styles=("fsm",), shrink=False
        )
        data = CoverageReport.from_cases(
            make_cases(config)
        ).to_dict()["histograms"]
        assert not any(key.startswith("perturb") for key in data)


class TestCoverageDiff:
    def _doc(self, histograms, cases=10):
        return {"cases": cases, "histograms": histograms}

    def test_identical_documents_pass(self):
        doc = self._doc({"processes": {"2": 5, "3": 5}})
        diff = diff_coverage(doc, doc)
        assert diff.ok
        assert "did not shrink" in diff.render()

    def test_lost_bucket_is_regression(self):
        old = self._doc({"processes": {"2": 5, "3": 5}})
        new = self._doc({"processes": {"2": 10}})
        diff = diff_coverage(old, new)
        assert not diff.ok
        assert any("processes[3]" in r for r in diff.regressions)

    def test_lost_metric_is_regression(self):
        old = self._doc({"styles": {"fsm": 5}})
        new = self._doc({})
        diff = diff_coverage(old, new)
        assert diff.regressions == ["metric styles (entirely)"]

    def test_new_buckets_are_additions_only(self):
        old = self._doc({"processes": {"2": 5}})
        new = self._doc(
            {"processes": {"2": 1, "4": 9}, "styles": {"fsm": 10}}
        )
        diff = diff_coverage(old, new)
        assert diff.ok
        assert len(diff.additions) == 2

    def test_count_changes_are_not_regressions(self):
        old = self._doc({"processes": {"2": 30}})
        new = self._doc({"processes": {"2": 1}})
        assert diff_coverage(old, new).ok

    def test_zero_count_bucket_is_no_support(self):
        old = self._doc({"processes": {"2": 0}})
        new = self._doc({"processes": {}})
        assert diff_coverage(old, new).ok


# -- CLI threading -------------------------------------------------------------


class TestPerturbCli:
    def test_verify_perturb_batch(self, capsys):
        code = main([
            "verify", "--cases", "3", "--seed", "0", "--perturb", "2",
            "--cycles", "150", "--no-shrink",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "perturb 2" in out

    def test_verify_perturb_floorplan_batch(self, capsys):
        code = main([
            "verify", "--cases", "2", "--seed", "1", "--perturb", "3",
            "--perturb-floorplan", "--cycles", "150", "--no-shrink",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "perturb 3+floorplan" in out

    def test_repro_replays_pinned_variants(self, tmp_path, capsys):
        topology, bad = _divergent_setup()
        data = topology_to_dict(topology)
        data["styles"] = ["fsm"]
        data["cycles"] = 150
        data["perturb"] = 1
        data["variants"] = [variant_to_dict(bad)]
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(data))
        code = main(["verify", "--repro", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "DIVERGED" in out
        assert "perturb" in out

    def test_repro_rederives_from_perturb_count(
        self, tmp_path, capsys
    ):
        topology = random_topology(3)
        data = topology_to_dict(topology)
        data["styles"] = ["fsm"]
        data["cycles"] = 150
        data["perturb"] = 2
        path = tmp_path / "ok.json"
        path.write_text(json.dumps(data))
        code = main(["verify", "--repro", str(path)])
        assert code == 0
        assert "no divergence" in capsys.readouterr().out

    def test_coverage_diff_cli(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps({
            "cases": 5,
            "histograms": {"processes": {"2": 3, "3": 2}},
        }))
        new.write_text(json.dumps({
            "cases": 5,
            "histograms": {"processes": {"2": 5}},
        }))
        assert main(["coverage-diff", str(old), str(old)]) == 0
        capsys.readouterr()
        assert main(["coverage-diff", str(old), str(new)]) == 1
        assert "LOST processes[3]" in capsys.readouterr().out

    def test_coverage_diff_unreadable(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps({"cases": 1, "histograms": {}}))
        assert main([
            "coverage-diff", str(tmp_path / "missing.json"), str(good)
        ]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["coverage-diff", str(good), str(bad)]) == 2

    def test_batch_shrinks_failure_to_variant_reproducer(
        self, tmp_path, monkeypatch, capsys
    ):
        """End-to-end: a batch whose perturbation diverges writes a
        reproducer that pins the minimal variant set."""
        import repro.verify.runner as runner_mod

        topology, bad = _divergent_setup()

        def fake_make_cases(config):
            return [
                VerifyCase(
                    index=0,
                    seed=topology.seed,
                    cycles=150,
                    topology=topology,
                    styles=("fsm",),
                    variants=(bad,) + derive_variants(
                        topology, 1, seed=topology.seed + 1
                    ),
                    perturb=2,
                )
            ]

        monkeypatch.setattr(runner_mod, "make_cases", fake_make_cases)
        code = main([
            "verify", "--cases", "1", "--out", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "latency variant(s)" in out
        written = json.loads(
            (tmp_path / "case0_minimal.json").read_text()
        )
        assert written["perturb"] == len(written["variants"]) == 1
        replayed = variant_from_dict(written["variants"][0])
        assert replayed.topology == bad.topology
