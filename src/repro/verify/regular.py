"""Static-activation planning for regular-traffic verification.

The shift-register wrapper (Casu & Macchiarulo) fires blindly on a
precomputed pattern, so it can only be verified in an environment
whose traffic is perfectly regular.  This module derives that pattern
the way the DAC'04 flow does — *offline, from the global schedule* —
but instead of solving the schedule analytically (which
:mod:`repro.sched.static_schedule` does for feed-forward systems), it
measures it: run the topology once under the behavioural FSM wrapper,
record every process's per-cycle enable trace, and decompose each
trace into

* a one-shot **prefix** (the start-up transient: pipeline fill,
  staggered offsets, FIFO warm-up), and
* a cyclic **pattern** (the periodic steady state) whose firing count
  is a multiple of the process's schedule period.

Replaying ``prefix + pattern`` through a :class:`~repro.core.wrappers.
ShiftRegisterWrapper` (or its generated RTL) reproduces the reference
run *exactly* over the measured horizon: the wrapper performs the same
pops and pushes on the same cycles, so no static-schedule violation
can occur and the differential oracle's stream/trace checks apply at
full strength.  When no compact periodic decomposition exists within
the horizon (for example the sources drained and the system wound
down), :func:`plan_static_activation` falls back to replaying the
whole trace as a prefix — still exact, just without the paper's
circular-ring steady state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..lis.simulator import Simulation
from ..sched.generate import SystemTopology


@dataclass(frozen=True)
class StaticActivation:
    """One process's planned activation: one-shot prefix, cyclic
    steady-state pattern."""

    prefix: tuple[bool, ...]
    pattern: tuple[bool, ...]

    @property
    def periodic(self) -> bool:
        """True when the steady-state ring actually fires (False for
        the whole-trace replay fallback)."""
        return any(self.pattern)

    @property
    def delay(self) -> int:
        return len(self.prefix)

    def activation(self, cycles: int) -> list[bool]:
        """The planned enable sequence over ``cycles`` cycles."""
        bits = list(self.prefix[:cycles])
        pattern = self.pattern if any(self.pattern) else (False,)
        while len(bits) < cycles:
            bits.append(pattern[(len(bits) - len(self.prefix))
                                % len(pattern)])
        return bits


def plan_static_activation(
    trace: Sequence[bool],
    period_cycles: int,
    min_reps: int = 2,
) -> StaticActivation:
    """Decompose a measured enable trace into prefix + cyclic pattern.

    Scans cycle lengths ``q`` from short to long and, for each, the
    shortest prefix ``d`` such that ``trace[t] == trace[t + q]`` for
    every ``t >= d``; accepts the first candidate whose cycle fires a
    multiple of ``period_cycles`` (keeping the ring aligned with the
    process schedule across wraps) and is observed at least
    ``min_reps`` times inside the trace.  By construction the returned
    plan's :meth:`~StaticActivation.activation` reproduces ``trace``
    bit-for-bit over its whole length; if no periodic candidate
    qualifies the whole trace becomes the prefix (exact replay, no
    steady-state ring).
    """
    bits = [bool(b) for b in trace]
    total = len(bits)
    if not any(bits):
        # Degenerate: the process never fired within the horizon.
        return StaticActivation(
            prefix=tuple(bits) or (False,), pattern=(False,)
        )
    for q in range(1, total // max(min_reps, 1) + 1):
        mismatch = -1
        for t in range(total - q - 1, -1, -1):
            if bits[t] != bits[t + q]:
                mismatch = t
                break
        d = mismatch + 1
        if d + min_reps * q > total:
            continue
        cycle = bits[d:d + q]
        if sum(cycle) % period_cycles != 0:
            continue
        return StaticActivation(
            prefix=tuple(bits[:d]), pattern=tuple(cycle)
        )
    return StaticActivation(prefix=tuple(bits), pattern=(False,))


def plan_topology_activations(
    topology: SystemTopology,
    cycles: int,
    deadlock_window: int | None = None,
    reference_traces: Mapping[str, Sequence[bool]] | None = None,
) -> dict[str, StaticActivation]:
    """Plan every process's static activation for one topology.

    ``reference_traces`` (per-process enable traces of a behavioural
    FSM run over the same ``cycles`` / ``deadlock_window``) lets a
    caller that already ran the reference style reuse it; otherwise
    the reference simulation runs here.
    """
    if reference_traces is None:
        from .cases import build_system

        system, shells, _sinks = build_system(
            topology, "fsm", trace=True
        )
        Simulation(system).run(cycles, deadlock_window=deadlock_window)
        reference_traces = {
            name: list(shell.trace_enable or [])
            for name, shell in shells.items()
        }
    return {
        node.name: plan_static_activation(
            reference_traces.get(node.name, ()),
            node.schedule.period_cycles,
        )
        for node in topology.processes
    }
