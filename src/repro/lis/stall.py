"""Deterministic mid-run stall injection for LIS links.

The latency-insensitivity claim is not only about *static* relay
segmentation: it promises that a correctly wrapped system survives
*dynamic* latency variation — a relay station or wire that refuses to
transfer for a few cycles in the middle of a run (congestion, a
voltage-droop throttle, a glitch absorbed by the protocol).  This
module injects exactly that, deterministically, so the metamorphic
oracle (:mod:`repro.verify.perturb`) can demand that sink streams stay
token-identical under any such stall plan.

A :class:`LinkStall` names one link of a built
:class:`~repro.lis.system.System` plus a cycle window; a
:class:`StallInjector` enforces it by overriding the link's wires
*after* every structural block produced its outputs: during a stalled
cycle the stop wire is forced high and the data wire forced void.
Both overrides together are what keeps the injection protocol-safe in
the two-phase simulator: the producer observes stop and holds its
token (ports and relay stations re-offer until the transfer fires),
while the consumer observes void and accepts nothing — so a stalled
cycle moves no token and duplicates none, exactly like one extra
cycle of relay latency inserted on the fly.  Forcing only the stop
wire would *not* be safe: receivers in this codebase accept on their
own capacity, trusting that the stop they drove is the stop the
producer saw.

Stall plans are pure data (tuples of frozen :class:`LinkStall`
records), picklable and JSON round-trippable, so verification cases
can carry them across worker processes and shrink them into minimal
reproducers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from .signals import VOID, Block, Link
from .system import System

#: A stall plan: zero or more link stalls, applied together.
StallPlan = tuple["LinkStall", ...]


@dataclass(frozen=True)
class LinkStall:
    """One stall window: ``link`` transfers nothing during cycles
    ``[start, start + duration)``."""

    link: str
    start: int
    duration: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("stall start must be >= 0")
        if self.duration < 1:
            raise ValueError("stall duration must be >= 1")

    @property
    def end(self) -> int:
        return self.start + self.duration

    def __str__(self) -> str:
        return f"{self.link}@[{self.start},{self.end})"


class StallInjector(Block):
    """Forces one link to stall during a planned set of cycles.

    Must be registered *after* every block that drives the link's
    wires (:meth:`repro.lis.system.System.add_instrument` appends to
    the block order), so its produce phase runs last and the override
    wins the cycle.
    """

    def __init__(
        self, name: str, link: Link, cycles: Iterable[int]
    ) -> None:
        super().__init__(name)
        self.link = link
        self._cycles = frozenset(int(c) for c in cycles)
        self._data = link.data
        self._stop = link.stop
        self.stalled_cycles = 0

    def produce(self, cycle: int) -> None:
        if cycle in self._cycles:
            self._data.value = VOID
            self._stop.stop = True
            self.stalled_cycles += 1

    def consume(self, cycle: int) -> None:
        pass

    def commit(self) -> None:
        pass

    def reset(self) -> None:
        self.stalled_cycles = 0

    def phase_parts(self):
        # Only the produce phase does anything; skip the no-op
        # consume/commit dispatch in the simulator's flattened loop.
        return [self.produce], [], []


def apply_stall_plan(
    system: System, stalls: Sequence[LinkStall]
) -> list[StallInjector]:
    """Attach one :class:`StallInjector` per stalled link of ``system``.

    Call after the system is fully wired: injectors are appended to
    the block order via :meth:`~repro.lis.system.System.add_instrument`
    so their overrides run after every structural produce.  Stalls on
    the same link merge into one injector (overlapping windows union).
    Raises :class:`ValueError` when a stall names a link the system
    does not have.
    """
    if not stalls:
        return []
    links = {link.name: link for link in system.links}
    windows: dict[str, set[int]] = {}
    for stall in stalls:
        if stall.link not in links:
            raise ValueError(
                f"stall plan references unknown link {stall.link!r}"
            )
        windows.setdefault(stall.link, set()).update(
            range(stall.start, stall.end)
        )
    injectors = []
    for name in sorted(windows):
        injector = StallInjector(
            f"stall:{name}", links[name], windows[name]
        )
        system.add_instrument(injector)
        injectors.append(injector)
    return injectors


def derive_stall_plan(
    links: Sequence[str],
    rng: random.Random,
    horizon: int,
    max_events: int = 3,
    max_duration: int = 16,
) -> StallPlan:
    """Draw a seeded mid-run stall plan over ``links``.

    Deterministic for a given ``rng`` state: 1..``max_events`` stall
    windows land on randomly drawn links, starting after the system
    warmed up (first sixth of the ``horizon``) and before it winds
    down (three quarters), each 1..``max_duration`` cycles long.
    ``max_duration`` defaults well below the verifier's deadlock
    window so a stalled system is never mistaken for a dead one.
    Returns the empty plan when there is nothing to stall.
    """
    if horizon < 2 or not links:
        return ()
    lo = max(1, horizon // 6)
    hi = max(lo, (3 * horizon) // 4)
    events = [
        LinkStall(
            link=links[rng.randrange(len(links))],
            start=rng.randint(lo, hi),
            duration=rng.randint(1, max_duration),
        )
        for _ in range(rng.randint(1, max_events))
    ]
    return tuple(sorted(events, key=lambda s: (s.start, s.link)))


def stall_to_dict(stall: LinkStall) -> dict:
    """JSON-ready representation of one stall window."""
    return {
        "link": stall.link,
        "start": stall.start,
        "duration": stall.duration,
    }


def stall_from_dict(data: dict) -> LinkStall:
    """Inverse of :func:`stall_to_dict`."""
    return LinkStall(
        link=str(data["link"]),
        start=int(data["start"]),
        duration=int(data["duration"]),
    )
