"""Two-phase RTL simulator: register semantics, hierarchy, loops."""

from __future__ import annotations

import pytest

from repro.rtl.ast import Const, Signal, mux
from repro.rtl.module import Design, Module
from repro.rtl.simulator import SimulationError, Simulator


def _counter(width=8):
    m = Module("counter")
    m.add_clock()
    rst = m.input("rst")
    en = m.input("en")
    count = m.output("count", width)
    m.register(count, count + 1, enable=en, reset=rst)
    return m


class TestRegisters:
    def test_counter_counts(self):
        sim = Simulator(_counter())
        sim.poke("en", 1)
        sim.step(5)
        assert sim.peek("count") == 5

    def test_enable_holds(self):
        sim = Simulator(_counter())
        sim.poke("en", 1)
        sim.step(3)
        sim.poke("en", 0)
        sim.step(10)
        assert sim.peek("count") == 3

    def test_reset_overrides_enable(self):
        sim = Simulator(_counter())
        sim.poke("en", 1)
        sim.step(3)
        sim.poke("rst", 1)
        sim.step()
        assert sim.peek("count") == 0

    def test_reset_value(self):
        m = Module("m")
        m.add_clock()
        rst = m.input("rst")
        q = m.output("q", 4)
        m.register(q, q, reset=rst, reset_value=9)
        sim = Simulator(m)
        sim.poke("rst", 1)
        sim.step()
        assert sim.peek("q") == 9

    def test_register_updates_simultaneous(self):
        # Swap register: a <= b, b <= a must exchange, not chain.
        m = Module("swap")
        m.add_clock()
        a = m.output("a", 4)
        b = m.output("b", 4)
        init = m.input("init")
        m.register(a, mux(init, Const(1, 4), b))
        m.register(b, mux(init, Const(2, 4), a))
        sim = Simulator(m)
        sim.poke("init", 1)
        sim.step()
        sim.poke("init", 0)
        assert (sim.peek("a"), sim.peek("b")) == (1, 2)
        sim.step()
        assert (sim.peek("a"), sim.peek("b")) == (2, 1)
        sim.step()
        assert (sim.peek("a"), sim.peek("b")) == (1, 2)

    def test_wrap_around(self):
        sim = Simulator(_counter(width=2))
        sim.poke("en", 1)
        sim.step(5)
        assert sim.peek("count") == 1  # 5 mod 4


class TestCombinational:
    def test_chained_assigns_settle_in_order(self):
        m = Module("chain")
        a = m.input("a", 4)
        w1 = m.wire("w1", 4)
        w2 = m.wire("w2", 4)
        y = m.output("y", 4)
        # Deliberately declared out of dependency order.
        m.assign(y, w2 + 1)
        m.assign(w2, w1 + 1)
        m.assign(w1, a + 1)
        sim = Simulator(m)
        sim.poke_settle("a", 1)
        assert sim.peek("y") == 4

    def test_comb_loop_detected(self):
        m = Module("loop")
        a = m.wire("a")
        b = m.wire("b")
        y = m.output("y")
        m.assign(a, b)
        m.assign(b, a)
        m.assign(y, a)
        with pytest.raises(SimulationError):
            Simulator(m)

    def test_multiple_drivers_detected(self):
        m = Module("multi")
        a = m.input("a")
        y = m.output("y")
        m.assign(y, a)
        m.assign(y, ~a)
        with pytest.raises(SimulationError):
            Simulator(m)

    def test_rom_read_combinational(self):
        m = Module("romtest")
        addr = m.input("addr", 2)
        data = m.output("data", 8)
        m.rom("r", addr, data, [5, 6, 7, 8])
        sim = Simulator(m)
        for a, expected in enumerate([5, 6, 7, 8]):
            sim.poke_settle("addr", a)
            assert sim.peek("data") == expected

    def test_rom_addressed_by_register(self):
        m = Module("romreg")
        m.add_clock()
        rst = m.input("rst")
        addr = m.wire("addr", 2)
        data = m.output("data", 4)
        m.register(addr, addr + 1, reset=rst)
        m.rom("r", addr, data, [1, 3, 5, 7])
        sim = Simulator(m)
        seen = [sim.peek("data")]
        for _ in range(3):
            sim.step()
            seen.append(sim.peek("data"))
        assert seen == [1, 3, 5, 7]


class TestHierarchy:
    def _parent(self):
        child = _counter(4)
        parent = Module("parent")
        clk = parent.add_clock()
        rst = parent.input("rst")
        en = parent.input("en")
        out = parent.output("out", 4)
        doubled = parent.output("doubled", 4)
        inner = parent.wire("inner", 4)
        parent.instantiate(
            child, "c0", {"clk": clk, "rst": rst, "en": en, "count": inner}
        )
        parent.assign(out, inner)
        parent.assign(doubled, inner + inner)
        return parent

    def test_child_simulated(self):
        sim = Simulator(self._parent())
        sim.poke("en", 1)
        sim.step(3)
        assert sim.peek("out") == 3
        assert sim.peek("doubled") == 6

    def test_flat_names_accessible(self):
        # Child-internal (non-port) signals appear under "inst.name".
        child = Module("child")
        child.add_clock()
        rst = child.input("rst")
        q = child.output("q", 4)
        internal = child.wire("internal", 4)
        child.assign(internal, q + 1)
        child.register(q, internal, reset=rst)
        parent = Module("p")
        clk = parent.add_clock()
        prst = parent.input("rst")
        out = parent.output("out", 4)
        parent.instantiate(child, "c0", {"clk": clk, "rst": prst, "q": out})
        sim = Simulator(parent)
        sim.step(2)
        assert sim.peek_flat("c0.internal") == 3

    def test_two_instances_independent(self):
        child = _counter(4)
        parent = Module("p2")
        clk = parent.add_clock()
        rst = parent.input("rst")
        en_a = parent.input("en_a")
        en_b = parent.input("en_b")
        out_a = parent.output("a", 4)
        out_b = parent.output("b", 4)
        parent.instantiate(
            child, "u_a", {"clk": clk, "rst": rst, "en": en_a, "count": out_a}
        )
        parent.instantiate(
            child, "u_b", {"clk": clk, "rst": rst, "en": en_b, "count": out_b}
        )
        sim = Simulator(parent)
        sim.poke("en_a", 1)
        sim.poke("en_b", 0)
        sim.step(4)
        assert sim.peek("a") == 4
        assert sim.peek("b") == 0


class TestPokePeek:
    def test_poke_masks_value(self):
        sim = Simulator(_counter())
        sim.poke("en", 0xFF)
        assert sim.peek("en") == 1

    def test_unknown_signal_raises(self):
        sim = Simulator(_counter())
        with pytest.raises(KeyError):
            sim.peek("nope")

    def test_design_wrapper_accepted(self):
        sim = Simulator(Design(_counter()))
        sim.poke("en", 1)
        sim.step()
        assert sim.peek("count") == 1

    def test_cycle_counter(self):
        sim = Simulator(_counter())
        assert sim.cycle == 0
        sim.step(7)
        assert sim.cycle == 7
