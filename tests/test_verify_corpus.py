"""Coverage-guided generation: corpus, determinism, and the coverage
dividend.

``--gen coverage`` must keep every invariant the random strategy has —
the case list is a pure function of ``(seed, cases, gen, profile,
traffic)``; ``--jobs`` never changes results; kill-then-resume
reproduces the uninterrupted journal — while buying measurably wider
histogram support on the same case budget (the acceptance bar: >= 15%
more populated buckets over a 300-case schedule).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.sched.generate import (
    PROFILE_PRESETS,
    random_topology,
    topology_to_dict,
)
from repro.verify import (
    BatchConfig,
    BatchRunner,
    CoverageReport,
    config_fingerprint,
    corpus_digest,
    generate_guided_topologies,
    load_corpus,
    make_cases,
    novelty_score,
    save_topology,
    select_interesting,
    topology_digest,
)

BEHAVIOURAL = ("fsm", "sp")


def _config(**kwargs):
    defaults = dict(
        cases=6,
        seed=5,
        jobs=2,
        cycles=120,
        styles=BEHAVIOURAL,
        gen="coverage",
    )
    defaults.update(kwargs)
    return BatchConfig(**defaults)


def _case_seeds(seed, n):
    rng = random.Random(seed)
    return [rng.getrandbits(31) for _ in range(n)]


def _outcome_key(outcome):
    return (
        outcome.index,
        outcome.seed,
        outcome.checks,
        outcome.sink_tokens,
        sorted(outcome.cycles_executed.items()),
    )


# -- schedule determinism ------------------------------------------------------


def test_guided_schedule_is_deterministic():
    seeds = _case_seeds(3, 40)
    profile = PROFILE_PRESETS["small"]
    first = generate_guided_topologies(seeds, profile, master_seed=3)
    second = generate_guided_topologies(seeds, profile, master_seed=3)
    assert first == second


def test_guided_case_list_matches_random_per_case_seeds():
    """Both strategies draw identical per-case seeds — only the
    topology filling each slot may differ."""
    guided = make_cases(_config())
    randoms = make_cases(_config(gen="random"))
    assert [c.seed for c in guided] == [c.seed for c in randoms]
    assert [c.index for c in guided] == [c.index for c in randoms]


def test_unknown_gen_mode_is_rejected():
    with pytest.raises(ValueError, match="generator strategy"):
        BatchConfig(cases=2, gen="telepathic")


# -- jobs-independence and journals --------------------------------------------


def test_jobs_do_not_change_guided_results():
    report_1 = BatchRunner(_config(jobs=1)).run()
    report_4 = BatchRunner(_config(jobs=4)).run()
    assert [_outcome_key(o) for o in report_1.outcomes] == [
        _outcome_key(o) for o in report_4.outcomes
    ]
    assert (
        report_1.coverage.to_json() == report_4.coverage.to_json()
    )


def test_killed_guided_campaign_resumes_to_identical_journal(tmp_path):
    path = tmp_path / "journal.jsonl"
    config = _config()
    BatchRunner(config, checkpoint=path).run()
    uninterrupted = path.read_text().splitlines()
    # Re-create the journal as a SIGKILL mid-append would leave it:
    # header, two complete records, one torn record.
    path.write_text(
        "\n".join(uninterrupted[:3]) + "\n" + uninterrupted[3][:20]
    )
    BatchRunner(config, checkpoint=path, resume=True).run()
    resumed = path.read_text().splitlines()
    assert sorted(resumed) == sorted(uninterrupted)


def test_fingerprint_names_a_gen_mismatch(tmp_path):
    path = tmp_path / "journal.jsonl"
    BatchRunner(_config(), checkpoint=path).run()
    with pytest.raises(ValueError, match=r"mismatched: .*\bgen\b"):
        BatchRunner(
            _config(gen="random"), checkpoint=path, resume=True
        ).run()


def test_fingerprint_tracks_corpus_contents(tmp_path):
    corpus = tmp_path / "corpus"
    config = _config(corpus=str(corpus))
    before = config_fingerprint(config)
    assert before["gen"] == "coverage"
    assert before["corpus"] is None  # empty directory == no corpus
    save_topology(
        corpus, random_topology(1, PROFILE_PRESETS["small"])
    )
    after = config_fingerprint(config)
    assert after["corpus"] == corpus_digest(corpus)
    assert after["corpus"] is not None
    assert before != after


def test_random_gen_fingerprint_ignores_corpus(tmp_path):
    """For --gen random the corpus is write-only (shrunk reproducers);
    its contents never influence results, so the fingerprint must not
    track it."""
    corpus = tmp_path / "corpus"
    config = _config(gen="random", corpus=str(corpus))
    before = config_fingerprint(config)
    save_topology(
        corpus, random_topology(1, PROFILE_PRESETS["small"])
    )
    assert config_fingerprint(config) == before


# -- the on-disk corpus --------------------------------------------------------


def test_corpus_save_load_round_trip(tmp_path):
    topologies = [
        random_topology(seed, PROFILE_PRESETS["small"])
        for seed in range(4)
    ]
    for topology in topologies:
        assert save_topology(tmp_path, topology) is not None
    loaded = load_corpus(tmp_path)
    assert sorted(t.name for t in loaded) == sorted(
        t.name for t in topologies
    )
    assert {topology_digest(t) for t in loaded} == {
        topology_digest(t) for t in topologies
    }


def test_corpus_save_deduplicates(tmp_path):
    topology = random_topology(7, PROFILE_PRESETS["small"])
    assert save_topology(tmp_path, topology) is not None
    assert save_topology(tmp_path, topology) is None
    assert len(list(tmp_path.glob("*.json"))) == 1


def test_load_corpus_skips_garbage_and_wrong_traffic(tmp_path):
    save_topology(tmp_path, random_topology(1, PROFILE_PRESETS["small"]))
    save_topology(
        tmp_path,
        random_topology(2, PROFILE_PRESETS["regular"]),
    )
    (tmp_path / "junk.json").write_text("{not json")
    (tmp_path / "wrong.json").write_text(json.dumps({"name": "x"}))
    assert len(load_corpus(tmp_path)) == 2
    assert len(load_corpus(tmp_path, traffic="random")) == 1
    assert load_corpus(tmp_path / "missing") == []


def test_load_corpus_reads_reproducer_files(tmp_path):
    """The corpus format *is* the reproducer topology JSON: a shrunk
    reproducer (topology dict + run-parameter keys) dropped into the
    directory loads as a pool entry."""
    reproducer = topology_to_dict(
        random_topology(3, PROFILE_PRESETS["small"])
    )
    reproducer.update(
        {"cycles": 300, "styles": ["fsm", "sp"], "engine": "compiled"}
    )
    (tmp_path / "case0_minimal.json").write_text(
        json.dumps(reproducer)
    )
    assert len(load_corpus(tmp_path)) == 1


def test_completed_batch_persists_interesting_topologies(tmp_path):
    corpus = tmp_path / "corpus"
    report = BatchRunner(_config(corpus=str(corpus))).run()
    assert report.corpus_saved > 0
    assert len(list(corpus.glob("*.json"))) == report.corpus_saved
    assert f"{report.corpus_saved} new" in report.summary()
    # The persisted pool seeds — and is valid for — a later campaign.
    assert len(load_corpus(corpus)) == report.corpus_saved


def test_corpus_entries_seed_the_next_schedule(tmp_path):
    corpus = tmp_path / "corpus"
    BatchRunner(_config(corpus=str(corpus))).run()
    seeded = make_cases(_config(seed=6, corpus=str(corpus)))
    bare = make_cases(_config(seed=6))
    assert [c.topology for c in seeded] != [
        c.topology for c in bare
    ]


# -- scoring -------------------------------------------------------------------


def test_novelty_score_prefers_unseen_shapes():
    report = CoverageReport()
    seen = random_topology(1, PROFILE_PRESETS["small"])
    for _ in range(5):
        report.observe(seen)
    fresh_score = None
    for seed in range(2, 30):
        candidate = random_topology(seed, PROFILE_PRESETS["small"])
        if (
            candidate.stats() != seen.stats()
        ):
            fresh_score = novelty_score(report, candidate)
            break
    assert fresh_score is not None
    assert fresh_score > novelty_score(report, seen)


def test_select_interesting_is_idempotent_and_first_wins():
    topologies = [
        random_topology(seed, PROFILE_PRESETS["small"])
        for seed in range(10)
    ]
    # A duplicate of the first entry adds nothing new.
    survivors = select_interesting([topologies[0]] + topologies)
    assert survivors[0] == topologies[0]
    assert topologies[0] not in survivors[1:]
    assert select_interesting(survivors) == survivors


# -- the acceptance bar: the coverage dividend ---------------------------------


def test_guided_schedule_beats_random_by_15_percent():
    """On a fixed 300-case budget at a pinned seed, the guided
    schedule must populate >= 15% more histogram buckets (summed over
    METRICS) than i.i.d. sampling."""
    seeds = _case_seeds(0, 300)
    profile = PROFILE_PRESETS["small"]

    def support(topologies):
        report = CoverageReport()
        for topology in topologies:
            report.observe(topology)
        return report.support()

    random_support = support(
        random_topology(seed, profile) for seed in seeds
    )
    guided_support = support(
        generate_guided_topologies(seeds, profile, master_seed=0)
    )
    assert guided_support >= random_support * 1.15, (
        f"guided {guided_support} vs random {random_support}"
    )
