"""Lane-batched verification: run W same-shape cases bit-parallel.

The compiled RTL engine already shares one kernel across every case
whose wrapper lowers to the same source (the *shape* cache).  This
module exploits that sharing at run time: cases whose processes carry
identical schedules are grouped into lane batches, each process shape
is compiled **once** into a lane-packed
:class:`~repro.rtl.compile_sim.VectorSimulator`, and one group
``settle``/``step`` advances the wrapper RTL of all W cases per cycle.
The behavioural side of each case (ports, relay stations, pearls)
stays per-lane Python, driven in lockstep; per-lane streams, traces
and periods are demuxed back into ordinary
:class:`~repro.verify.cases.StyleRun` records, so the oracle pipeline
is untouched and ``run_cases_vectorized(cases)`` is result-identical
to ``[run_case(c) for c in cases]``.

Lockstep is sound because the LIS two-phase discipline has no
same-cycle input-to-output path: within one cycle the scalar driver's
poke -> settle -> read -> step sequence per shell commutes across
shells, so hoisting the settle/step into one group call per kernel
changes nothing observable.  A lane whose case errors out simply
stops being driven — its RTL keeps stepping in the packed word, which
is harmless because no other lane can see it.

What vectorizes: RTL-in-the-loop styles that publish their generated
module via :attr:`~repro.verify.styles.StyleSpec.rtl_parts` and need
no per-case planned activation (``rtl-sp``, ``rtl-fsm``).
Behavioural styles, ``rtl-shiftreg`` (its activation — and therefore
its module — is planned per case from the FSM reference run), and
singleton shape buckets fall back to the scalar path, where
``engine="vectorized"`` degrades to the compiled engine.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Sequence

from ..core.equivalence import RTLShell
from ..core.rtlgen.common import sanitize
from ..lis.port import DEFAULT_PORT_DEPTH
from ..rtl.compile_sim import VectorLane, VectorSimulator
from . import telemetry
from .cases import (
    CaseOutcome,
    StyleRun,
    VerifyCase,
    build_system,
    relay_peak_occupancy,
    run_case,
    run_styles,
)
from .styles import get_style

__all__ = [
    "DEFAULT_LANES",
    "LaneRTLShell",
    "bucket_cases",
    "chunk_cases",
    "run_cases_vectorized",
    "run_chunk",
    "shape_key",
    "vectorizable_style",
]

#: Default lane width: wide enough to amortize the per-cycle Python
#: drive overhead, narrow enough that the packed big ints stay in the
#: fast small-multi-digit regime and partial batches stay rare.
DEFAULT_LANES = 32


def vectorizable_style(name: str) -> bool:
    """True when ``name`` can run on the lane-batched path."""
    try:
        spec = get_style(name)
    except ValueError:
        return False
    return (
        spec.kind == "rtl"
        and spec.rtl_parts is not None
        and not spec.needs_activation
    )


def shape_key(case: VerifyCase) -> tuple:
    """Bucketing key: cases with equal keys lower every process to
    identical wrapper RTL (same schedules under the same names) and
    share one drive loop (same cycles/window/styles)."""
    return (
        case.cycles,
        case.deadlock_window,
        case.styles,
        tuple(
            (
                node.name,
                tuple(node.schedule.inputs),
                tuple(node.schedule.outputs),
                tuple(
                    (
                        tuple(sorted(point.inputs)),
                        tuple(sorted(point.outputs)),
                        point.run,
                    )
                    for point in node.schedule.points
                ),
            )
            for node in case.topology.processes
        ),
    )


def bucket_cases(
    cases: Sequence[VerifyCase],
) -> list[list[VerifyCase]]:
    """Group cases by :func:`shape_key`, preserving order."""
    buckets: dict[tuple, list[VerifyCase]] = {}
    for case in cases:
        buckets.setdefault(shape_key(case), []).append(case)
    return list(buckets.values())


def chunk_cases(
    cases: Sequence[VerifyCase], lanes: int = DEFAULT_LANES
) -> list[list[VerifyCase]]:
    """Same-shape lane batches of at most ``lanes`` cases each (the
    last batch of a bucket may be partial)."""
    chunks: list[list[VerifyCase]] = []
    for bucket in bucket_cases(cases):
        for start in range(0, len(bucket), lanes):
            chunks.append(bucket[start : start + lanes])
    return chunks


def _control_bundle(schedule) -> tuple[str, ...]:
    """The wrapper's 1-bit ready inputs, in shell poke order (the
    reset stays outside: it is only poked collectively, once)."""
    return tuple(
        f"{sanitize(name)}_not_empty" for name in schedule.inputs
    ) + tuple(
        f"{sanitize(name)}_not_full" for name in schedule.outputs
    )


def _status_bundle(schedule) -> tuple[str, ...]:
    """The wrapper's 1-bit strobe outputs: enable, pops, pushes."""
    return (
        ("ip_enable",)
        + tuple(f"{sanitize(name)}_pop" for name in schedule.inputs)
        + tuple(f"{sanitize(name)}_push" for name in schedule.outputs)
    )


class LaneRTLShell(RTLShell):
    """An :class:`RTLShell` whose RTL lives in one lane of a shared
    :class:`VectorSimulator`.

    Its ``_wrapper_step`` only pokes the packed ready word — the group
    driver owns settle, the strobe-reading decide pass
    (:meth:`_lane_decide`) and step, interleaved across every lane of
    the batch.  Reset is collective too (the driver broadcasts ``rst``
    before the first cycle), so per-shell reset is a no-op and these
    shells are single-use.
    """

    style = "rtl-lane"

    def __init__(
        self,
        pearl,
        module,
        lane: VectorLane,
        program=None,
        port_depth: int = DEFAULT_PORT_DEPTH,
    ) -> None:
        self._lane_view = lane
        super().__init__(
            pearl, module, program=program, port_depth=port_depth,
            engine="vectorized",
        )
        n_inputs = len(pearl.schedule.inputs)
        self._in_mask = (1 << n_inputs) - 1
        self._push_shift = 1 + n_inputs

    def _make_rtl(self):
        return self._lane_view

    def _apply_reset(self) -> None:
        pass  # the group driver resets all lanes at once

    def _wrapper_step(self, cycle: int) -> None:
        bits = 0
        position = 0
        in_ports = self.in_ports
        for name, _poke_name in self._not_empty_pokes:
            if in_ports[name].not_empty:
                bits |= 1 << position
            position += 1
        out_ports = self.out_ports
        for name, _poke_name in self._not_full_pokes:
            if out_ports[name].not_full:
                bits |= 1 << position
            position += 1
        self._lane_view.poke_control(bits)

    def _lane_decide(self, cycle: int) -> None:
        """Read this lane's settled strobes and execute the cycle
        (the scalar step's post-settle half)."""
        status = self._lane_view.peek_status()
        self._apply_strobes(
            cycle,
            bool(status & 1),
            status >> 1 & self._in_mask,
            status >> self._push_shift,
        )

    def reset(self) -> None:
        raise RuntimeError(
            "lane-batched RTL shells are single-use; build a fresh "
            "batch instead of resetting"
        )


class _LaneRecord:
    """One lane's case, system, phase lists and run bookkeeping."""

    __slots__ = (
        "case", "system", "shells", "sinks", "produce", "consume",
        "commit", "deciders", "shell_list", "error", "executed",
        "deadlocked", "done", "quiet", "last_total",
    )

    def __init__(self, case: VerifyCase) -> None:
        self.case = case
        self.error: str | None = None
        self.executed = 0
        self.deadlocked = False
        self.done = False
        self.quiet = 0
        self.last_total = 0

    def fail(self, exc: Exception) -> None:
        # Same contract as simulate_topology: any failure is an error
        # record (executed resets to 0 — the scalar path never reports
        # partial progress for a crashed style either).
        self.error = f"{type(exc).__name__}: {exc}"
        self.executed = 0
        self.done = True

    def build(
        self,
        style: str,
        parts: dict[str, tuple],
        sims: dict[str, VectorSimulator],
        lane: int,
        trace: bool,
    ) -> None:
        topology = self.case.topology

        def factory(pearl, node):
            module, program = parts[node.name]
            return LaneRTLShell(
                pearl,
                module,
                sims[node.name].lane(lane),
                program=program,
                port_depth=topology.port_depth,
            )

        system, shells, sinks = build_system(
            topology, style, trace=trace, shell_factory=factory
        )
        system.validate()
        self.system = system
        self.shells = shells
        self.sinks = sinks
        produce: list[Any] = []
        consume: list[Any] = []
        commit: list[Any] = []
        for block in system.blocks:
            p, c, k = block.phase_parts()
            produce.extend(p)
            consume.extend(c)
            commit.extend(k)
        self.produce = produce
        self.consume = consume
        self.commit = commit
        self.shell_list = list(shells.values())
        self.deciders = [
            shell._lane_decide for shell in self.shell_list
        ]

    def tick_deadlock(self, window: int | None) -> None:
        if window is None:
            return
        total = sum(
            shell.enabled_cycles for shell in self.shell_list
        )
        self.quiet = 0 if total != self.last_total else self.quiet + 1
        self.last_total = total
        if self.quiet >= window:
            self.deadlocked = True
            self.done = True

    def harvest(self, trace: bool) -> StyleRun:
        if self.error is not None:
            return StyleRun(
                streams={}, traces={}, periods={}, executed=0,
                error=self.error,
            )
        return StyleRun(
            streams={
                name: list(sink.received)
                for name, sink in self.sinks.items()
            },
            traces=(
                {
                    name: list(shell.trace_enable or [])
                    for name, shell in self.shells.items()
                }
                if trace
                else {}
            ),
            periods={
                name: shell.periods_completed
                for name, shell in self.shells.items()
            },
            executed=self.executed,
            relay_peak=relay_peak_occupancy(self.system),
            deadlocked=self.deadlocked,
        )


def _run_style_lanes(
    cases: Sequence[VerifyCase], style: str, trace: bool = True
) -> list[StyleRun]:
    """Simulate same-shape ``cases`` under one vectorizable RTL style
    in lane lockstep; one :class:`StyleRun` per case, in order."""
    spec = get_style(style)
    lanes = len(cases)
    first = cases[0].topology
    with telemetry.span("build", style=style, lanes=lanes):
        parts = {
            node.name: spec.rtl_parts(node) for node in first.processes
        }
        sims = {
            node.name: VectorSimulator(
                parts[node.name][0],
                lanes,
                poke_bundle=_control_bundle(node.schedule),
                peek_bundle=_status_bundle(node.schedule),
            )
            for node in first.processes
        }
        records = [_LaneRecord(case) for case in cases]
        for lane, record in enumerate(records):
            try:
                record.build(style, parts, sims, lane, trace)
            except Exception as exc:
                record.fail(exc)

    with telemetry.span("simulate", style=style, lanes=lanes):
        sim_list = list(sims.values())
        for sim in sim_list:
            sim.broadcast("rst", 1)
            sim.step()
            sim.broadcast("rst", 0)

        cycles = cases[0].cycles
        window = cases[0].deadlock_window
        live = [r for r in records if not r.done]
        for _ in range(cycles):
            if not live:
                break
            for record in live:
                try:
                    cycle = record.executed
                    for fn in record.produce:
                        fn(cycle)
                    for fn in record.consume:
                        fn(cycle)
                except Exception as exc:
                    record.fail(exc)
            live = [r for r in live if not r.done]
            for sim in sim_list:
                sim.settle()
            for record in live:
                try:
                    for fn in record.deciders:
                        fn(record.executed)
                except Exception as exc:
                    record.fail(exc)
            for sim in sim_list:
                sim.step()
            for record in live:
                if record.done:
                    continue
                try:
                    for fn in record.commit:
                        fn()
                    record.executed += 1
                    record.tick_deadlock(window)
                except Exception as exc:
                    record.fail(exc)
            live = [r for r in live if not r.done]

    return [record.harvest(trace) for record in records]


def run_chunk(chunk: Sequence[VerifyCase]) -> list[CaseOutcome]:
    """Run one same-shape chunk: lane-batch the vectorizable styles,
    scalar-run the rest, then fold the oracle pipeline per case.

    This is also the supervised campaign runner's unit of vectorized
    work (:func:`repro.verify.runner.run_cases_supervised`): a chunk
    whose worker crashes or times out is *split* back into singleton
    chunks — i.e. plain scalar ``run_case`` calls — so one poisoned
    lane degrades that bucket to per-case isolation instead of
    sinking the batch."""
    if len(chunk) == 1:
        return [run_case(chunk[0])]
    lane_runs = {
        style: _run_style_lanes(chunk, style)
        for style in chunk[0].styles
        if vectorizable_style(style)
    }
    outcomes: list[CaseOutcome] = []
    for position, case in enumerate(chunk):
        rest = [s for s in case.styles if s not in lane_runs]
        scalar_runs = (
            run_styles(
                case.topology,
                rest,
                case.cycles,
                case.deadlock_window,
                engine=case.engine,
            )
            if rest
            else {}
        )
        runs = {
            style: (
                lane_runs[style][position]
                if style in lane_runs
                else scalar_runs[style]
            )
            for style in case.styles
        }
        outcomes.append(run_case(case, runs=runs))
    return outcomes


def run_cases_vectorized(
    cases: Sequence[VerifyCase],
    lanes: int = DEFAULT_LANES,
    jobs: int = 1,
) -> list[CaseOutcome]:
    """Outcomes for ``cases`` (any mix of shapes), result-identical to
    ``[run_case(c) for c in cases]`` and returned in the same order.

    Cases are bucketed by :func:`shape_key` and cut into lane batches
    of at most ``lanes``; each batch runs its RTL styles on shared
    lane-packed kernels.  With ``jobs > 1`` whole batches fan out
    across worker processes.
    """
    chunks = chunk_cases(cases, lanes)
    if jobs > 1 and len(chunks) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            per_chunk = list(pool.map(run_chunk, chunks))
    else:
        per_chunk = [run_chunk(chunk) for chunk in chunks]
    by_index = {
        outcome.index: outcome
        for outcomes in per_chunk
        for outcome in outcomes
    }
    return [by_index[case.index] for case in cases]
