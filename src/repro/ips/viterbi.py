"""Convolutional coding and Viterbi decoding, plus the LIS pearl.

The paper's second IP is a GAUT-synthesized Viterbi decoder with the
Table-1 complexity signature 5 ports / 4 sync ops / 198 free-run
cycles.  We implement a complete hard-decision Viterbi decoder for a
rate-1/2, constraint-length-K convolutional code (default K=7, the
industry-standard (171,133) polynomials; K=3 used in fast tests), with
block-based traceback, and wrap it as a pearl with exactly the paper's
signature:

* op0: pop one symbol pair  (ports ``sym_a``, ``sym_b``)
* op1: pop a second symbol pair, then free-run 198 cycles (the
  branch-metric / add-compare-select / traceback burst)
* op2: push the decoded bits   (port ``bit_out``)
* op3: push the path metric and a sync flag (``metric_out``,
  ``flag_out``)

That is 5 ports, 4 sync ops, 198 run cycles per period — the exact
triple of Table 1.  Each period advances the decode window by two
trellis steps; decisions are released with a traceback depth of
``5 * K`` steps, the classical rule of thumb.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from ..core.schedule import IOSchedule, SyncPoint
from ..lis.pearl import Pearl


def _parity(value: int) -> int:
    return bin(value).count("1") & 1


@dataclass(frozen=True)
class ConvCode:
    """Rate-1/2 convolutional code with generator polynomials (octal
    notation conventional: K=7 -> 0o171, 0o133)."""

    k: int = 7
    g0: int = 0o171
    g1: int = 0o133

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError("constraint length must be >= 2")
        limit = 1 << self.k
        if not (0 < self.g0 < limit and 0 < self.g1 < limit):
            raise ValueError("generator polynomials must fit in K bits")

    @property
    def n_states(self) -> int:
        return 1 << (self.k - 1)


class ConvEncoder:
    """Shift-register encoder; emits one (bit0, bit1) pair per input."""

    def __init__(self, code: ConvCode | None = None) -> None:
        self.code = code or ConvCode()
        self.state = 0

    def reset(self) -> None:
        self.state = 0

    def encode_bit(self, bit: int) -> tuple[int, int]:
        register = (bit << (self.code.k - 1)) | self.state
        out0 = _parity(register & self.code.g0)
        out1 = _parity(register & self.code.g1)
        self.state = register >> 1
        return out0, out1

    def encode(self, bits: Iterable[int]) -> list[tuple[int, int]]:
        return [self.encode_bit(int(b) & 1) for b in bits]

    def encode_terminated(self, bits: Sequence[int]) -> list[tuple[int, int]]:
        """Encode and flush with K-1 zero tail bits (returns to state 0)."""
        pairs = self.encode(bits)
        pairs.extend(self.encode_bit(0) for _ in range(self.code.k - 1))
        return pairs


class ViterbiDecoder:
    """Hard-decision Viterbi decoder with sliding-window traceback.

    ``traceback_depth`` defaults to 5*K.  :meth:`decode_pair` consumes
    one received symbol pair and returns any bits released by the
    traceback window (possibly empty).
    """

    def __init__(
        self,
        code: ConvCode | None = None,
        traceback_depth: int | None = None,
    ) -> None:
        self.code = code or ConvCode()
        self.traceback_depth = traceback_depth or 5 * self.code.k
        n = self.code.n_states
        # Precompute the trellis: for state s and input bit b, the next
        # state and the two expected channel bits.
        self._next_state = [[0] * 2 for _ in range(n)]
        self._expected = [[(0, 0)] * 2 for _ in range(n)]
        for state in range(n):
            for bit in (0, 1):
                register = (bit << (self.code.k - 1)) | state
                self._next_state[state][bit] = register >> 1
                self._expected[state][bit] = (
                    _parity(register & self.code.g0),
                    _parity(register & self.code.g1),
                )
        self.reset()

    def reset(self) -> None:
        big = 1 << 20
        self.metrics = [0] + [big] * (self.code.n_states - 1)
        self.history: list[list[tuple[int, int]]] = []  # (prev state, bit)
        self.acs_steps = 0

    def decode_pair(self, r0: int, r1: int) -> list[int]:
        """One trellis step (ACS over all states) + window traceback."""
        n = self.code.n_states
        big = 1 << 30
        new_metrics = [big] * n
        decisions: list[tuple[int, int]] = [(0, 0)] * n
        for state in range(n):
            metric = self.metrics[state]
            if metric >= big:
                continue
            for bit in (0, 1):
                e0, e1 = self._expected[state][bit]
                branch = (e0 ^ (r0 & 1)) + (e1 ^ (r1 & 1))
                nxt = self._next_state[state][bit]
                candidate = metric + branch
                if candidate < new_metrics[nxt]:
                    new_metrics[nxt] = candidate
                    decisions[nxt] = (state, bit)
        self.metrics = new_metrics
        self.history.append(decisions)
        self.acs_steps += 1
        if len(self.history) >= self.traceback_depth:
            return [self._release_oldest()]
        return []

    def _best_state(self) -> int:
        best = 0
        for state in range(1, self.code.n_states):
            if self.metrics[state] < self.metrics[best]:
                best = state
        return best

    def _release_oldest(self) -> int:
        """Trace back from the best end state; release the oldest bit."""
        state = self._best_state()
        bit = 0
        for decisions in reversed(self.history):
            state, bit = decisions[state]
        self.history.pop(0)
        return bit

    def flush(self) -> list[int]:
        """Drain the window at end of stream (terminated trellis: trace
        from state 0)."""
        bits = []
        while self.history:
            state = 0
            bit = 0
            for decisions in reversed(self.history):
                state, bit = decisions[state]
            self.history.pop(0)
            bits.append(bit)
        return bits

    @property
    def best_metric(self) -> int:
        return min(self.metrics)


def decode_sequence(
    pairs: Sequence[tuple[int, int]],
    code: ConvCode | None = None,
    terminated: bool = True,
) -> list[int]:
    """Convenience block decoder over a full received sequence."""
    decoder = ViterbiDecoder(code)
    bits: list[int] = []
    for r0, r1 in pairs:
        bits.extend(decoder.decode_pair(r0, r1))
    bits.extend(decoder.flush())
    if terminated and code is not None:
        tail = code.k - 1
        bits = bits[: len(bits) - tail] if tail else bits
    elif terminated:
        bits = bits[: len(bits) - (decoder.code.k - 1)]
    return bits


# -- the latency-insensitive pearl (Table-1 signature: 5 / 4 / 198) -----------


def viterbi_schedule(run_cycles: int = 198) -> IOSchedule:
    """The paper's Viterbi wrapper signature: 5 ports, 4 sync ops,
    ``run_cycles`` free-run cycles."""
    return IOSchedule(
        ["sym_a", "sym_b"],
        ["bit_out", "metric_out", "flag_out"],
        [
            SyncPoint({"sym_a", "sym_b"}, frozenset()),
            SyncPoint({"sym_a", "sym_b"}, frozenset(), run=run_cycles),
            SyncPoint(frozenset(), {"bit_out"}),
            SyncPoint(frozenset(), {"metric_out", "flag_out"}),
        ],
    )


class ViterbiPearl(Pearl):
    """Viterbi decoder pearl with the paper's 5/4/198 signature.

    Each period consumes two received symbol pairs, performs the
    ACS/traceback burst during the free run, then emits the released
    bits (as a tuple token), the running path metric, and a flag that
    is 1 once the traceback window has filled.
    """

    def __init__(
        self,
        name: str = "viterbi_dec",
        code: ConvCode | None = None,
        run_cycles: int = 198,
        traceback_depth: int | None = None,
    ) -> None:
        super().__init__(name, viterbi_schedule(run_cycles))
        self.decoder = ViterbiDecoder(code, traceback_depth)
        self._released: list[int] = []
        self._run_work = 0

    def on_sync(
        self, index: int, popped: Mapping[str, Any]
    ) -> Mapping[str, Any]:
        if index in (0, 1):
            bits = self.decoder.decode_pair(
                int(popped["sym_a"]) & 1, int(popped["sym_b"]) & 1
            )
            self._released.extend(bits)
            return {}
        if index == 2:
            released = tuple(self._released)
            self._released = []
            return {"bit_out": released}
        return {
            "metric_out": self.decoder.best_metric,
            "flag_out": int(
                len(self.decoder.history) >= self.decoder.traceback_depth - 1
            ),
        }

    def on_run(self, index: int, phase: int) -> None:
        # The burst models the sequential ACS/traceback datapath; count
        # the work cycles so tests can assert the 198-cycle budget.
        self._run_work += 1

    def on_reset(self) -> None:
        super().on_reset()
        self.decoder.reset()
        self._released = []
        self._run_work = 0
