"""Cyclic I/O schedules — the input language of wrapper synthesis.

A *schedule* describes the statically-known, data-independent
communication behaviour of a synchronous IP ("pearl"), exactly the
information Singh & Theobald's FSM wrapper and the paper's
synchronization processor consume:

* the IP has named input and output ports;
* its steady-state behaviour is a cyclic sequence of *sync points*;
* at each sync point it consumes one token from a **subset** of inputs
  and produces one token on a **subset** of outputs, then runs freely
  for ``run`` further clock cycles (internal computation needing no
  synchronization).

The paper summarizes a schedule's complexity as the triple
``ports / wait / run`` (Table 1): number of ports, number of sync
operations, and total free-run cycles per period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


class ScheduleError(ValueError):
    """Raised for malformed schedules."""


@dataclass(frozen=True)
class SyncPoint:
    """One synchronization operation.

    ``inputs``/``outputs`` are the port subsets that must be ready
    (non-empty / non-full) before the IP clock may fire; ``run`` is the
    number of additional free-run cycles granted after the sync cycle.
    """

    inputs: frozenset[str] = frozenset()
    outputs: frozenset[str] = frozenset()
    run: int = 0

    def __post_init__(self) -> None:
        if self.run < 0:
            raise ScheduleError("free-run cycle count must be >= 0")
        object.__setattr__(self, "inputs", frozenset(self.inputs))
        object.__setattr__(self, "outputs", frozenset(self.outputs))

    @property
    def cycles(self) -> int:
        """Enabled IP cycles this operation accounts for (sync + run)."""
        return 1 + self.run

    def __repr__(self) -> str:
        ins = ",".join(sorted(self.inputs)) or "-"
        outs = ",".join(sorted(self.outputs)) or "-"
        return f"SyncPoint(in={ins}, out={outs}, run={self.run})"


@dataclass(frozen=True)
class ScheduleStats:
    """The paper's Table-1 complexity triple plus period length."""

    ports: int
    waits: int
    run: int
    period_cycles: int

    def __str__(self) -> str:
        return f"{self.ports} / {self.waits} / {self.run}"


class IOSchedule:
    """A validated cyclic I/O schedule over named ports.

    ``inputs``/``outputs`` order is significant: it fixes the bit
    positions of the SP operation masks and the FSM's port sensitivity
    vectors, and therefore the generated hardware.
    """

    def __init__(
        self,
        inputs: Sequence[str],
        outputs: Sequence[str],
        points: Iterable[SyncPoint],
    ) -> None:
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)
        self.points = tuple(points)
        self._validate()

    def _validate(self) -> None:
        if len(set(self.inputs)) != len(self.inputs):
            raise ScheduleError("duplicate input port names")
        if len(set(self.outputs)) != len(self.outputs):
            raise ScheduleError("duplicate output port names")
        overlap = set(self.inputs) & set(self.outputs)
        if overlap:
            raise ScheduleError(
                f"ports cannot be both input and output: {sorted(overlap)}"
            )
        if not self.points:
            raise ScheduleError("schedule needs at least one sync point")
        known_in = set(self.inputs)
        known_out = set(self.outputs)
        for index, point in enumerate(self.points):
            bad_in = point.inputs - known_in
            if bad_in:
                raise ScheduleError(
                    f"sync point {index} references unknown input(s) "
                    f"{sorted(bad_in)}"
                )
            bad_out = point.outputs - known_out
            if bad_out:
                raise ScheduleError(
                    f"sync point {index} references unknown output(s) "
                    f"{sorted(bad_out)}"
                )

    # -- statistics -----------------------------------------------------------

    @property
    def n_ports(self) -> int:
        return len(self.inputs) + len(self.outputs)

    @property
    def period_cycles(self) -> int:
        """IP-enabled cycles per period (sync cycles + free-run cycles)."""
        return sum(point.cycles for point in self.points)

    def stats(self) -> ScheduleStats:
        return ScheduleStats(
            ports=self.n_ports,
            waits=len(self.points),
            run=sum(point.run for point in self.points),
            period_cycles=self.period_cycles,
        )

    # -- mask encoding ----------------------------------------------------------

    def input_mask(self, point: SyncPoint) -> int:
        """Bit mask of ``point.inputs`` in declared input order (bit 0 =
        first input)."""
        mask = 0
        for bit, name in enumerate(self.inputs):
            if name in point.inputs:
                mask |= 1 << bit
        return mask

    def output_mask(self, point: SyncPoint) -> int:
        mask = 0
        for bit, name in enumerate(self.outputs):
            if name in point.outputs:
                mask |= 1 << bit
        return mask

    def inputs_from_mask(self, mask: int) -> frozenset[str]:
        return frozenset(
            name for bit, name in enumerate(self.inputs) if mask >> bit & 1
        )

    def outputs_from_mask(self, mask: int) -> frozenset[str]:
        return frozenset(
            name for bit, name in enumerate(self.outputs) if mask >> bit & 1
        )

    # -- transformations -----------------------------------------------------------

    def normalized(self) -> "IOSchedule":
        """Fuse pure-run sync points (no port interaction) into the
        preceding operation's free-run count.

        A point with empty masks only waits on nothing — it is an
        unconditional enable cycle, identical to one more free-run
        cycle of the previous operation.  Leading pure-run points wrap
        around to the last operation (the schedule is cyclic), unless
        every point is pure-run, in which case they collapse to one.
        """
        points = list(self.points)
        if all(not p.inputs and not p.outputs for p in points):
            total = sum(p.cycles for p in points)
            return IOSchedule(
                self.inputs, self.outputs, [SyncPoint(run=total - 1)]
            )
        # Rotate so the schedule starts at a real sync point.
        first_real = next(
            i for i, p in enumerate(points) if p.inputs or p.outputs
        )
        rotated = points[first_real:] + points[:first_real]
        fused: list[SyncPoint] = []
        for point in rotated:
            if (point.inputs or point.outputs) or not fused:
                fused.append(point)
            else:
                last = fused[-1]
                fused[-1] = SyncPoint(
                    last.inputs, last.outputs, last.run + point.cycles
                )
        return IOSchedule(self.inputs, self.outputs, fused)

    def repeated(self, times: int) -> "IOSchedule":
        """Unroll the period ``times`` times (for schedule experiments)."""
        if times < 1:
            raise ScheduleError("repeat count must be >= 1")
        return IOSchedule(self.inputs, self.outputs, self.points * times)

    # -- interpretation ---------------------------------------------------------

    def unrolled_cycles(self) -> list[tuple[int, str]]:
        """The period as a per-cycle list of ``(point index, kind)``
        where kind is ``"sync"`` or ``"run"`` — the FSM wrapper's state
        sequence."""
        cycles: list[tuple[int, str]] = []
        for index, point in enumerate(self.points):
            cycles.append((index, "sync"))
            cycles.extend((index, "run") for _ in range(point.run))
        return cycles

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IOSchedule):
            return NotImplemented
        return (
            self.inputs == other.inputs
            and self.outputs == other.outputs
            and self.points == other.points
        )

    def __hash__(self) -> int:
        return hash((self.inputs, self.outputs, self.points))

    def __repr__(self) -> str:
        return (
            f"IOSchedule(inputs={list(self.inputs)}, "
            f"outputs={list(self.outputs)}, points={len(self.points)}, "
            f"stats={self.stats()})"
        )


def uniform_schedule(
    inputs: Sequence[str], outputs: Sequence[str], run: int = 0
) -> IOSchedule:
    """The classic Carloni behaviour: every port, every operation."""
    return IOSchedule(
        inputs,
        outputs,
        [SyncPoint(frozenset(inputs), frozenset(outputs), run)],
    )
