"""Pearls: suspendable synchronous IP cores.

In Carloni's terminology the *pearl* is the reusable IP and the *shell*
is the synchronization wrapper around it.  A pearl here is a Python
object with

* named input/output ports,
* a cyclic :class:`~repro.core.schedule.IOSchedule` describing which
  port subsets it touches at each synchronization point, and
* functional hooks (:meth:`on_sync`, :meth:`on_run`) the shell calls
  when it fires the pearl clock.

A pearl never looks at the LIS protocol — it is a plain synchronous
design that can be *suspended* between any two cycles, which is exactly
the patient-process contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # avoid runtime repro.core <-> repro.lis import cycle
    from ..core.schedule import IOSchedule


class PearlError(RuntimeError):
    """Raised when a pearl violates its declared schedule."""


class Pearl:
    """Base class for schedule-driven IP cores.

    Subclasses implement :meth:`on_sync` (consume the popped tokens of
    sync point *index*, return the tokens to push) and optionally
    :meth:`on_run` (one internal free-run cycle).  The shell guarantees
    ``on_sync`` is called with exactly the ports of the schedule's sync
    point, in cyclic order.
    """

    def __init__(self, name: str, schedule: "IOSchedule") -> None:
        self.name = name
        self.schedule = schedule
        self.local_cycle = 0  # cycles of the gated IP clock that fired

    @property
    def inputs(self) -> tuple[str, ...]:
        return self.schedule.inputs

    @property
    def outputs(self) -> tuple[str, ...]:
        return self.schedule.outputs

    # -- hooks the shell drives ------------------------------------------------

    def on_sync(
        self, index: int, popped: Mapping[str, Any]
    ) -> Mapping[str, Any]:
        """Handle sync point ``index``; return {output port: token}."""
        raise NotImplementedError

    def on_run(self, index: int, phase: int) -> None:
        """One free-run cycle after sync point ``index`` (``phase`` counts
        from 0).  Default: pure internal computation, nothing to model."""

    def on_reset(self) -> None:
        """Return internal state to power-up values."""
        self.local_cycle = 0

    # -- shell-side bookkeeping ---------------------------------------------------

    def _clocked(self) -> None:
        self.local_cycle += 1

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, "
            f"schedule={self.schedule.stats()})"
        )


class FunctionPearl(Pearl):
    """A pearl defined by a plain function per sync point.

    ``fn(index, popped) -> pushed`` — convenient for tests and small
    examples where no internal state is needed.
    """

    def __init__(self, name: str, schedule: "IOSchedule", fn) -> None:
        super().__init__(name, schedule)
        self._fn = fn

    def on_sync(
        self, index: int, popped: Mapping[str, Any]
    ) -> Mapping[str, Any]:
        return self._fn(index, popped)


class PassthroughPearl(Pearl):
    """Single-input single-output identity pearl (protocol tests)."""

    def __init__(self, name: str, schedule: "IOSchedule") -> None:
        if len(schedule.inputs) != 1 or len(schedule.outputs) != 1:
            raise PearlError("PassthroughPearl needs exactly 1 in / 1 out")
        super().__init__(name, schedule)

    def on_sync(
        self, index: int, popped: Mapping[str, Any]
    ) -> Mapping[str, Any]:
        (value,) = popped.values()
        return {self.schedule.outputs[0]: value}
