"""Campaign journal, resume, graceful-interrupt and atomic-write tests.

The checkpoint journal's contract: a campaign killed at any byte —
mid-record included — resumes to the exact same :class:`BatchReport`
an uninterrupted run produces; a journal from a *different* campaign
(any result-determining config field changed) is rejected; Ctrl-C
yields a flushed journal, a partial summary, and exit 130.
"""

from __future__ import annotations

import json

import pytest

import repro.cli as cli
import repro.verify.runner as runner_mod
from repro.verify import (
    BatchConfig,
    BatchRunner,
    CampaignJournal,
    CaseOutcome,
    ChaosConfig,
    Divergence,
    config_fingerprint,
    write_atomic,
)
from repro.verify.campaign import (
    JOURNAL_VERSION,
    outcome_from_record,
    outcome_to_record,
)

BEHAVIOURAL = ("fsm", "sp")


def _config(**kwargs):
    defaults = dict(
        cases=6, seed=5, jobs=2, cycles=120, styles=BEHAVIOURAL
    )
    defaults.update(kwargs)
    return BatchConfig(**defaults)


def _fingerprint(outcome):
    return (
        outcome.index,
        outcome.seed,
        outcome.checks,
        outcome.sink_tokens,
        sorted(outcome.cycles_executed.items()),
    )


# -- record round trip ---------------------------------------------------------


def test_outcome_record_round_trips_divergences():
    outcome = CaseOutcome(
        index=7,
        seed=1234,
        checks=9,
        divergences=[
            Divergence("streams", "sp", "sink0", "prefix mismatch"),
        ],
        cycles_executed={"fsm": 120, "sp": 118},
        sink_tokens=42,
        topology_stats="3p/4c",
        status="completed",
        attempts=2,
    )
    record = outcome_to_record(outcome)
    json_line = json.dumps(record, sort_keys=True)
    assert outcome_from_record(json.loads(json_line)) == outcome


def test_fault_outcome_record_round_trips():
    outcome = CaseOutcome(
        index=3,
        seed=99,
        topology_stats="2p/2c",
        status="crash",
        attempts=2,
        fault="worker died (exit code 86)",
    )
    assert outcome_from_record(outcome_to_record(outcome)) == outcome
    assert outcome.faulted


# -- fingerprints --------------------------------------------------------------


def test_fingerprint_ignores_liveness_knobs():
    base = _config()
    assert config_fingerprint(base) == config_fingerprint(
        _config(jobs=4, timeout=10.0, retries=3, retry_backoff=0.5)
    )


@pytest.mark.parametrize(
    "kwargs",
    [
        {"cases": 7},
        {"seed": 6},
        {"cycles": 121},
        {"styles": ("fsm",)},
        {"deadlock_window": 65},
        {"chaos": ChaosConfig(crash=(1,))},
    ],
)
def test_fingerprint_tracks_result_determining_fields(kwargs):
    assert config_fingerprint(_config()) != config_fingerprint(
        _config(**kwargs)
    )


# -- journal lifecycle ---------------------------------------------------------


def test_checkpointed_run_writes_header_plus_outcomes(tmp_path):
    path = tmp_path / "journal.jsonl"
    config = _config()
    report = BatchRunner(config, checkpoint=path).run()
    lines = path.read_text().splitlines()
    assert len(lines) == 1 + config.cases
    header = json.loads(lines[0])
    assert header["kind"] == "header"
    assert header["version"] == JOURNAL_VERSION
    assert header["config"] == config_fingerprint(config)
    recorded = sorted(
        json.loads(line)["case"] for line in lines[1:]
    )
    assert recorded == [o.index for o in report.outcomes]


def test_resume_mid_campaign_reproduces_full_report(tmp_path):
    path = tmp_path / "journal.jsonl"
    config = _config()
    full = BatchRunner(config).run()
    BatchRunner(config, checkpoint=path).run()
    lines = path.read_text().splitlines()
    # Keep the header + three outcomes + a torn trailing record, as a
    # SIGKILL mid-append would leave it.
    path.write_text("\n".join(lines[:4]) + "\n" + lines[4][:25])
    resumed = BatchRunner(config, checkpoint=path, resume=True).run()
    assert [_fingerprint(o) for o in resumed.outcomes] == [
        _fingerprint(o) for o in full.outcomes
    ]
    # The journal was re-truncated and completed: full record set.
    lines = path.read_text().splitlines()
    assert len(lines) == 1 + config.cases
    assert all(json.loads(line) for line in lines)


def test_resume_with_complete_journal_runs_nothing(tmp_path, monkeypatch):
    path = tmp_path / "journal.jsonl"
    config = _config()
    full = BatchRunner(config, checkpoint=path).run()

    def explode(case, runs=None):
        raise AssertionError("resume re-ran a recorded case")

    monkeypatch.setattr(runner_mod, "run_case", explode)
    resumed = BatchRunner(config, checkpoint=path, resume=True).run()
    assert [_fingerprint(o) for o in resumed.outcomes] == [
        _fingerprint(o) for o in full.outcomes
    ]


def test_resume_rejects_other_campaigns_journal(tmp_path):
    path = tmp_path / "journal.jsonl"
    BatchRunner(_config(), checkpoint=path).run()
    other = _config(seed=6)
    with pytest.raises(ValueError, match="different campaign"):
        BatchRunner(other, checkpoint=path, resume=True).run()


def test_resume_accepts_different_liveness_knobs(tmp_path):
    path = tmp_path / "journal.jsonl"
    config = _config()
    full = BatchRunner(config, checkpoint=path).run()
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:3]) + "\n")
    # Resume with more workers and a timeout: same campaign.
    resumed = BatchRunner(
        _config(jobs=1, timeout=60.0, retries=0),
        checkpoint=path,
        resume=True,
    ).run()
    assert [_fingerprint(o) for o in resumed.outcomes] == [
        _fingerprint(o) for o in full.outcomes
    ]


def test_resume_without_journal_file_is_friendly(tmp_path):
    with pytest.raises(ValueError, match="no journal"):
        CampaignJournal.resume(tmp_path / "absent.jsonl", _config())


def test_resume_rejects_wrong_version(tmp_path):
    path = tmp_path / "journal.jsonl"
    header = {
        "kind": "header",
        "version": JOURNAL_VERSION + 1,
        "config": config_fingerprint(_config()),
    }
    path.write_text(json.dumps(header) + "\n")
    with pytest.raises(ValueError, match="version"):
        CampaignJournal.resume(path, _config())


def test_journal_tolerates_garbage_tail(tmp_path):
    path = tmp_path / "journal.jsonl"
    config = _config()
    BatchRunner(config, checkpoint=path).run()
    with open(path, "a") as handle:
        handle.write("{not json at all\n")
    resumed = BatchRunner(config, checkpoint=path, resume=True).run()
    assert len(resumed.outcomes) == config.cases


def test_faulted_outcomes_checkpoint_and_resume(tmp_path):
    path = tmp_path / "journal.jsonl"
    config = _config(
        retries=0, retry_backoff=0.01, chaos=ChaosConfig(crash=(2,))
    )
    first = BatchRunner(config, checkpoint=path).run()
    assert first.outcomes[2].status == "crash"
    resumed = BatchRunner(config, checkpoint=path, resume=True).run()
    # The recorded crash outcome is replayed verbatim, not re-run.
    assert resumed.outcomes[2] == first.outcomes[2]


# -- graceful interrupt --------------------------------------------------------


def test_keyboard_interrupt_yields_partial_report(tmp_path, monkeypatch):
    path = tmp_path / "journal.jsonl"
    config = BatchConfig(
        cases=5, seed=5, jobs=1, cycles=120, styles=BEHAVIOURAL
    )
    real = runner_mod.run_case
    ran = []

    def interrupt_after_two(case, runs=None):
        if len(ran) == 2:
            raise KeyboardInterrupt
        outcome = real(case)
        ran.append(case.index)
        return outcome

    monkeypatch.setattr(runner_mod, "run_case", interrupt_after_two)
    report = BatchRunner(config, checkpoint=path).run()
    assert report.interrupted
    assert len(report.outcomes) == 2
    assert "INTERRUPTED after 2/5 cases" in report.summary()
    # The journal holds exactly the finished cases, flushed.
    lines = path.read_text().splitlines()
    assert len(lines) == 1 + 2
    # …and the campaign resumes to completion from it.
    monkeypatch.setattr(runner_mod, "run_case", real)
    resumed = BatchRunner(config, checkpoint=path, resume=True).run()
    assert not resumed.interrupted
    assert len(resumed.outcomes) == 5


def test_cli_interrupt_exits_130(tmp_path, monkeypatch, capsys):
    def interrupt(case, runs=None):
        raise KeyboardInterrupt

    monkeypatch.setattr(runner_mod, "run_case", interrupt)
    code = cli.main(
        [
            "verify",
            "--cases",
            "3",
            "--cycles",
            "60",
            "--checkpoint",
            str(tmp_path / "journal.jsonl"),
        ]
    )
    assert code == 130
    out = capsys.readouterr().out
    assert "INTERRUPTED" in out


# -- CLI plumbing --------------------------------------------------------------


def test_cli_resume_requires_checkpoint(capsys):
    code = cli.main(["verify", "--cases", "2", "--resume"])
    assert code == 2
    assert "--checkpoint" in capsys.readouterr().err


def test_cli_rejects_bad_chaos_spec(capsys):
    code = cli.main(["verify", "--cases", "2", "--chaos", "warp:1"])
    assert code == 2
    assert "chaos" in capsys.readouterr().err


def test_cli_rejects_bad_timeout(capsys):
    code = cli.main(["verify", "--cases", "2", "--timeout", "0"])
    assert code == 2
    assert "timeout" in capsys.readouterr().err


def test_cli_resume_against_changed_config_exits_2(tmp_path, capsys):
    journal = str(tmp_path / "journal.jsonl")
    assert (
        cli.main(
            [
                "verify", "--cases", "2", "--cycles", "60",
                "--checkpoint", journal,
            ]
        )
        == 0
    )
    capsys.readouterr()
    code = cli.main(
        [
            "verify", "--cases", "3", "--cycles", "60",
            "--checkpoint", journal, "--resume",
        ]
    )
    assert code == 2
    assert "different campaign" in capsys.readouterr().err


def test_cli_checkpoint_resume_round_trip(tmp_path, capsys):
    journal = tmp_path / "journal.jsonl"
    args = ["verify", "--cases", "4", "--cycles", "60", "--seed", "8"]
    assert cli.main(args + ["--checkpoint", str(journal)]) == 0
    lines = journal.read_text().splitlines()
    journal.write_text("\n".join(lines[:3]) + "\n")
    assert (
        cli.main(args + ["--checkpoint", str(journal), "--resume"])
        == 0
    )
    assert "4 cases" in capsys.readouterr().out
    assert len(journal.read_text().splitlines()) == 5


# -- atomic writes -------------------------------------------------------------


def test_write_atomic_replaces_content(tmp_path):
    path = tmp_path / "out.json"
    write_atomic(path, "first")
    write_atomic(path, "second")
    assert path.read_text() == "second"
    # No temp droppings left behind.
    assert [p.name for p in tmp_path.iterdir()] == ["out.json"]


def test_cli_coverage_json_written_atomically(tmp_path, capsys):
    path = tmp_path / "cov.json"
    code = cli.main(
        [
            "verify", "--cases", "2", "--cycles", "150",
            "--coverage-json", str(path),
        ]
    )
    assert code == 0
    json.loads(path.read_text())  # complete, parseable artifact
    assert not list(tmp_path.glob(".*.tmp"))
