"""SoC construction: patient processes, channels, relay stations.

:class:`System` is the netlist of a latency-insensitive SoC.  Channels
are declared with a forward *latency* (>= 1 cycle: one cycle is the
consumer's input-port register, each extra cycle inserts one relay
station, mirroring how the methodology segments long wires to break
critical paths).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from .relay_station import RelayStation, segment_channel
from .shell import Shell, ShellError
from .signals import Block, Link
from .stream import Sink, Source


class SystemError_(RuntimeError):
    """Raised for malformed system graphs."""


class Channel:
    """Bookkeeping for one logical connection (for analysis/benches)."""

    def __init__(
        self,
        name: str,
        producer: str,
        consumer: str,
        latency: int,
        stations: Sequence[RelayStation],
        tokens: int = 0,
    ) -> None:
        self.name = name
        self.producer = producer
        self.consumer = consumer
        self.latency = latency
        self.stations = list(stations)
        self.tokens = tokens

    def __repr__(self) -> str:
        return (
            f"Channel({self.name!r}, {self.producer} -> {self.consumer}, "
            f"latency={self.latency}, relays={len(self.stations)}, "
            f"tokens={self.tokens})"
        )


class System:
    """A latency-insensitive SoC under construction."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.shells: dict[str, Shell] = {}
        self.sources: dict[str, Source] = {}
        self.sinks: dict[str, Sink] = {}
        self.relay_stations: list[RelayStation] = []
        self.channels: list[Channel] = []
        self.links: list[Link] = []
        self.instruments: list[Block] = []
        self._block_order: list[Block] = []

    # -- construction ---------------------------------------------------------

    def add_patient(self, shell: Shell) -> Shell:
        """Register a patient process (shell + pearl)."""
        if shell.name in self.shells:
            raise SystemError_(
                f"duplicate patient process name {shell.name!r}"
            )
        self.shells[shell.name] = shell
        self._block_order.append(shell)
        return shell

    def _new_link(self, name: str) -> Link:
        link = Link(name)
        self.links.append(link)
        return link

    def _register_stations(
        self, stations: Sequence[RelayStation]
    ) -> None:
        self.relay_stations.extend(stations)
        self._block_order.extend(stations)
        # Segment links (the ``.seg{k}`` hops between relay stations)
        # are created by segment_channel, not _new_link; register them
        # so instrumentation (e.g. stall injection) can address them.
        self.links.extend(station.downstream for station in stations)

    def connect(
        self,
        producer: Shell,
        out_name: str,
        consumer: Shell,
        in_name: str,
        latency: int = 1,
        initial_tokens: Sequence[Any] = (),
    ) -> Channel:
        """Channel from ``producer.out_name`` to ``consumer.in_name``.

        ``initial_tokens`` is the channel's reset-time marking: the
        token values are preloaded into the consumer's input-port FIFO
        (credit tokens that make feedback loops live) and counted in
        the channel's marked-graph model.
        """
        channel_name = (
            f"{producer.name}.{out_name}->{consumer.name}.{in_name}"
        )
        head = self._new_link(channel_name)
        stations, tail = segment_channel(channel_name, head, latency)
        self._register_stations(stations)
        producer.bind_output(out_name, head)
        port = consumer.bind_input(in_name, tail)
        if initial_tokens:
            port.preload(initial_tokens)
        channel = Channel(
            channel_name, producer.name, consumer.name, latency,
            stations, tokens=len(initial_tokens),
        )
        self.channels.append(channel)
        return channel

    def connect_source(
        self,
        name: str,
        tokens: Iterable[Any],
        consumer: Shell,
        in_name: str,
        latency: int = 1,
        gaps: Sequence[bool] | None = None,
    ) -> Source:
        """External stream into ``consumer.in_name``."""
        channel_name = f"{name}->{consumer.name}.{in_name}"
        head = self._new_link(channel_name)
        stations, tail = segment_channel(channel_name, head, latency)
        self._register_stations(stations)
        source = Source(name, head, tokens, gaps)
        if name in self.sources:
            raise SystemError_(f"duplicate source name {name!r}")
        self.sources[name] = source
        self._block_order.append(source)
        consumer.bind_input(in_name, tail)
        self.channels.append(
            Channel(channel_name, name, consumer.name, latency, stations)
        )
        return source

    def connect_sink(
        self,
        producer: Shell,
        out_name: str,
        name: str,
        latency: int = 1,
        stalls: Sequence[bool] | None = None,
        limit: int | None = None,
    ) -> Sink:
        """``producer.out_name`` into an external sink."""
        channel_name = f"{producer.name}.{out_name}->{name}"
        head = self._new_link(channel_name)
        stations, tail = segment_channel(channel_name, head, latency)
        self._register_stations(stations)
        producer.bind_output(out_name, head)
        sink = Sink(name, tail, stalls, limit)
        if name in self.sinks:
            raise SystemError_(f"duplicate sink name {name!r}")
        self.sinks[name] = sink
        self._block_order.append(sink)
        self.channels.append(
            Channel(channel_name, producer.name, name, latency, stations)
        )
        return sink

    def add_instrument(self, block: Block) -> Block:
        """Register an instrumentation block (e.g. a
        :class:`~repro.lis.stall.StallInjector`) appended after every
        structural block, so its produce phase runs last each cycle
        and may override link wires.  Call only once the system is
        fully wired — structural blocks added afterwards would produce
        after it again."""
        self.instruments.append(block)
        self._block_order.append(block)
        return block

    # -- validation ---------------------------------------------------------------

    def validate(self) -> None:
        for shell in self.shells.values():
            shell.check_bound()
        if not self._block_order:
            raise SystemError_(f"system {self.name!r} is empty")

    @property
    def blocks(self) -> list[Block]:
        return list(self._block_order)

    def relay_station_count(self) -> int:
        return len(self.relay_stations)

    def __repr__(self) -> str:
        return (
            f"System({self.name!r}, patients={len(self.shells)}, "
            f"sources={len(self.sources)}, sinks={len(self.sinks)}, "
            f"relays={len(self.relay_stations)})"
        )
