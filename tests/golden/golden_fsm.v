module golden_fsm(clk, rst, a_not_empty, a_pop, b_not_empty, b_pop, y_not_full, y_push, status_not_full, status_push, ip_enable);
    input clk;
    input rst;
    input a_not_empty;
    output a_pop;
    input b_not_empty;
    output b_pop;
    input y_not_full;
    output y_push;
    input status_not_full;
    output status_push;
    output ip_enable;
    reg [3:0] state;
    wire ready_0;
    wire ready_1;
    wire ready_2;
    wire ready_3;
    wire [3:0] next_state;

    assign ready_0 = a_not_empty;
    assign ready_1 = (a_not_empty & b_not_empty);
    assign ready_2 = y_not_full;
    assign ready_3 = (y_not_full & status_not_full);
    assign next_state = (state[3] ? (state[2] ? 4'd0 : (state[1] ? 4'd0 : (state[0] ? 4'd0 : 4'd9))) : (state[2] ? (state[1] ? (state[0] ? (ready_3 ? 4'd8 : 4'd7) : (ready_2 ? 4'd7 : 4'd6)) : (state[0] ? 4'd6 : 4'd5)) : (state[1] ? (state[0] ? 4'd4 : (ready_1 ? 4'd3 : 4'd2)) : (state[0] ? 4'd2 : (ready_0 ? 4'd1 : 4'd0)))));
    assign ip_enable = (state[3] ? (state[2] ? 1'd0 : (state[1] ? 1'd0 : 1'd1)) : (state[2] ? (state[1] ? (state[0] ? ready_3 : ready_2) : 1'd1) : (state[1] ? (state[0] ? 1'd1 : ready_1) : (state[0] ? 1'd1 : ready_0))));
    assign a_pop = (state[3] ? 1'd0 : (state[2] ? 1'd0 : (state[1] ? (state[0] ? 1'd0 : ready_1) : (state[0] ? 1'd0 : ready_0))));
    assign b_pop = (state[3] ? 1'd0 : (state[2] ? 1'd0 : (state[1] ? (state[0] ? 1'd0 : ready_1) : 1'd0)));
    assign y_push = (state[3] ? 1'd0 : (state[2] ? (state[1] ? (state[0] ? ready_3 : ready_2) : 1'd0) : 1'd0));
    assign status_push = (state[3] ? 1'd0 : (state[2] ? (state[1] ? (state[0] ? ready_3 : 1'd0) : 1'd0) : 1'd0));

    always @(posedge clk) begin
        if (rst)
            state <= 4'd0;
        else begin
            state <= next_state;
        end
    end
endmodule
