#!/usr/bin/env python3
"""Quickstart: wrap an IP in a synchronization processor.

Covers the library's core loop end to end in ~60 lines of user code:

1. describe an IP's cyclic I/O schedule;
2. compile it into a synchronization-processor program;
3. generate synthesizable Verilog for the SP wrapper;
4. estimate area/frequency on the Virtex-II-class FPGA model;
5. drop the IP into a latency-insensitive system and simulate it.

Run:  python examples/quickstart.py
"""

from repro import (
    IOSchedule,
    Simulation,
    SPWrapper,
    SyncPoint,
    System,
    synthesize_wrapper,
)
from repro.core import compile_schedule
from repro.lis import FunctionPearl

# 1. The IP: a multiply-accumulate engine.  Each period it pops one
#    sample, runs 3 internal cycles, then emits one result.  Note the
#    partial-port behaviour: "x_in" and "y_out" are touched at
#    *different* sync points — exactly what Carloni's combinational
#    wrapper cannot express and the SP handles natively.
schedule = IOSchedule(
    inputs=["x_in"],
    outputs=["y_out"],
    points=[
        SyncPoint({"x_in"}, set(), run=3),  # pop, then 3 compute cycles
        SyncPoint(set(), {"y_out"}),        # push the result
    ],
)
print("schedule complexity (ports/wait/run):", schedule.stats())

# 2. Compile to an SP program — the operation stream the paper's
#    processor executes from its operations memory.
program = compile_schedule(schedule)
print("\nSP program:")
print(program.listing())

# 3 + 4. Synthesize the wrapper: Verilog out, slices/fmax estimated.
result = synthesize_wrapper(schedule, style="sp")
print("\nsynthesis:", result.report.summary())
print("\ngenerated Verilog:")
print(result.verilog)

# 5. Simulate the patient process inside a LIS system with a jittery
#    source (tokens only every other cycle) and a 3-cycle channel
#    (2 relay stations inserted automatically).
state = {"acc": 0}


def mac_step(index, popped):
    if index == 0:
        state["acc"] = state["acc"] * 2 + popped["x_in"]
        return {}
    return {"y_out": state["acc"]}


pearl = FunctionPearl("mac", schedule, mac_step)
system = System("quickstart")
shell = system.add_patient(SPWrapper(pearl))
system.connect_source(
    "stimulus", range(10), shell, "x_in",
    latency=3, gaps=[True, False],
)
sink = system.connect_sink(shell, "y_out", "results")
Simulation(system).run(200)

print("results received:", sink.received)
print(
    f"pearl enabled {shell.enabled_cycles} cycles, "
    f"stalled {shell.stall_cycles} (latency-insensitive: the stream "
    "is correct regardless of channel latency and source jitter)"
)

assert sink.received[0] == 0 and sink.received[1] == 1
print("\nquickstart OK")
