"""Supervised worker pool: crash isolation, timeouts, bounded retry.

``concurrent.futures`` fans work out efficiently but fails
catastrophically: one worker dying mid-task raises
``BrokenProcessPool`` and discards every completed result, and a task
that never returns stalls the whole pool forever.  For long
verification campaigns the runner needs the same fault model we impose
on the systems under test, so this module supervises its workers
explicitly:

* every worker is one ``multiprocessing.Process`` with a private
  duplex :func:`multiprocessing.Pipe` — a worker killed mid-message
  can corrupt only its own channel, never a shared result queue;
* each task carries a wall-clock **deadline** (``timeout`` seconds,
  optionally scaled per payload via ``timeout_scale``); a worker that
  blows its deadline is SIGKILLed and replaced;
* a worker that dies (segfault, OOM kill, ``os._exit``) while holding
  a task is detected promptly via its process sentinel and replaced;
* failed tasks are retried up to ``retries`` times with capped
  exponential backoff (:func:`backoff_delay`), and a task still
  failing after its budget is *finalized* as a structured
  :class:`WorkerFault` instead of an exception — the caller decides
  what a crash means;
* a multi-item task (e.g. a vectorized lane batch) can declare a
  ``split`` policy: on its first fault it is replaced by its
  sub-tasks, so one poisoned item degrades the batch to per-item
  isolation instead of sinking it.

The pool is generic — ``worker(payload, attempt, *worker_args)`` is
any picklable module-level callable — and makes no ordering promise:
results arrive in completion order, each as a ``(payload, result)``
pair, with ``on_result`` fired as they land (the campaign journal
hangs off that hook).

When the parent has an active telemetry session
(:mod:`repro.verify.telemetry`), each worker runs its task under a
fresh buffered session and ships the collected records back inside a
:class:`_Relayed` envelope over the existing result pipe; the parent
unwraps and ingests them, and additionally emits ``supervise.*``
lifecycle events (spawn / crash / timeout / retry, tagged with the
worker pid).  None of this machinery runs when telemetry is off — the
envelope is never created — so results are byte-identical either way.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing as mp
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_ready
from typing import Any, Callable, Sequence

from . import telemetry

__all__ = [
    "MAX_BACKOFF",
    "SupervisedPool",
    "WorkerFault",
    "backoff_delay",
]

#: Ceiling on one retry's backoff sleep, whatever the attempt count —
#: a campaign should degrade, not stall, under repeated faults.
MAX_BACKOFF = 5.0


def backoff_delay(
    attempt: int, backoff: float, cap: float = MAX_BACKOFF
) -> float:
    """Seconds to wait before retry ``attempt`` (1-based): exponential
    in the attempt number, capped at ``cap``."""
    if backoff <= 0:
        return 0.0
    return min(backoff * (2 ** (attempt - 1)), cap)


@dataclass(frozen=True)
class WorkerFault:
    """A task that exhausted its attempt budget.

    ``kind`` is ``"crash"`` (the worker died, or the worker callable
    raised) or ``"timeout"`` (the task blew its wall-clock deadline);
    ``detail`` is human-readable context (exit code, deadline);
    ``attempts`` counts every execution attempt, the first included.
    """

    kind: str
    detail: str
    attempts: int


class _WorkerError:
    """An exception that escaped the worker callable (the worker
    process itself survived)."""

    __slots__ = ("detail",)

    def __init__(self, detail: str) -> None:
        self.detail = detail


class _Relayed:
    """A worker result plus the telemetry records its task emitted —
    the pipe envelope used only while the parent session is active."""

    __slots__ = ("result", "records")

    def __init__(self, result: Any, records: list) -> None:
        self.result = result
        self.records = records


def _worker_main(conn, worker, worker_args, relay_telemetry=False) -> None:
    """Worker loop: receive ``(attempt, payload)``, run, send result.
    A ``None`` message (or a closed pipe) is the shutdown signal.

    With ``relay_telemetry`` each task runs under a fresh buffered
    session (replacing whatever session a fork inherited, so parent
    records are never double-counted) whose drained records — plus the
    task's engine-counter movement — ride back in a :class:`_Relayed`
    envelope."""
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if item is None:
            return
        attempt, payload = item
        session = None
        if relay_telemetry:
            session = telemetry.activate(
                telemetry.TelemetrySession(buffered=True)
            )
            engine_before = telemetry.engine_stats()
        try:
            result = worker(payload, attempt, *worker_args)
        except KeyboardInterrupt:
            return
        except BaseException as exc:
            result = _WorkerError(f"{type(exc).__name__}: {exc}")
        if session is not None:
            telemetry.emit_engine_delta(engine_before)
            telemetry.deactivate()
            result = _Relayed(result, session.drain())
        try:
            conn.send(result)
        except (BrokenPipeError, EOFError, KeyboardInterrupt):
            return
        except Exception as exc:  # e.g. an unpicklable result
            conn.send(
                _WorkerError(
                    f"result not transferable: "
                    f"{type(exc).__name__}: {exc}"
                )
            )


class _Task:
    __slots__ = ("payload", "attempts")

    def __init__(self, payload: Any) -> None:
        self.payload = payload
        self.attempts = 0


class _Worker:
    """One supervised worker process and its private channel."""

    __slots__ = ("process", "conn", "task", "deadline")

    def __init__(self, ctx, worker, worker_args, relay=False) -> None:
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, worker, worker_args, relay),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.task: _Task | None = None
        self.deadline: float | None = None

    def discard(self) -> None:
        if self.process.is_alive():
            self.process.kill()
        self.process.join()
        try:
            self.conn.close()
        except OSError:
            pass


class SupervisedPool:
    """Fan payloads over supervised workers; faults become results.

    * ``worker`` — picklable ``(payload, attempt, *worker_args)``
      callable executed in the worker processes;
    * ``jobs`` — worker process count;
    * ``timeout`` — per-task wall-clock seconds (``None`` disables
      deadlines); ``timeout_scale(payload)`` multiplies it per task
      (lane batches scale with their width);
    * ``retries`` / ``backoff`` — attempt budget beyond the first try,
      and the base of the capped exponential retry delay;
    * ``split`` — optional ``payload -> list[payload] | None``; a
      faulting task whose payload splits is replaced by its sub-tasks
      (fresh attempt budgets) instead of being retried whole.
    """

    def __init__(
        self,
        worker: Callable[..., Any],
        *,
        jobs: int = 1,
        timeout: float | None = None,
        retries: int = 1,
        backoff: float = 0.1,
        worker_args: tuple = (),
        split: Callable[[Any], list | None] | None = None,
        timeout_scale: Callable[[Any], int] | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("need at least one worker")
        if timeout is not None and not timeout > 0:
            raise ValueError("per-task timeout must be positive")
        if retries < 0:
            raise ValueError("retry count must be >= 0")
        if backoff < 0:
            raise ValueError("retry backoff must be >= 0")
        self.worker = worker
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.worker_args = tuple(worker_args)
        self.split = split
        self.timeout_scale = timeout_scale
        self._ctx = mp.get_context()

    # -- internals -------------------------------------------------------------

    def _spawn(self) -> _Worker:
        # Relay worker telemetry only while the parent session exists:
        # the envelope (and its cost) never appears with telemetry off.
        relay = telemetry.active() is not None
        worker = _Worker(self._ctx, self.worker, self.worker_args, relay)
        telemetry.event("supervise.spawn", pid=worker.process.pid)
        return worker

    def _dispatch(self, worker: _Worker, task: _Task) -> None:
        telemetry.count("supervise.dispatch")
        worker.conn.send((task.attempts, task.payload))
        worker.task = task
        worker.deadline = None
        if self.timeout is not None:
            scale = (
                self.timeout_scale(task.payload)
                if self.timeout_scale is not None
                else 1
            )
            worker.deadline = (
                time.monotonic() + self.timeout * max(1, scale)
            )

    def run(
        self,
        payloads: Sequence[Any],
        on_result: Callable[[Any, Any], None] | None = None,
    ) -> list[tuple[Any, Any]]:
        """Execute every payload; return ``(payload, result)`` pairs in
        completion order, where a result is the worker's return value
        or a :class:`WorkerFault`.  ``on_result`` fires per completed
        task.  On :class:`KeyboardInterrupt` the workers are killed and
        the interrupt propagates — results delivered so far have
        already reached ``on_result``."""
        pending: deque[_Task] = deque(_Task(p) for p in payloads)
        retry_heap: list[tuple[float, int, _Task]] = []
        tiebreak = itertools.count()
        workers: list[_Worker] = []
        results: list[tuple[Any, Any]] = []
        outstanding = len(pending)

        def finalize(task: _Task, result: Any) -> None:
            nonlocal outstanding
            results.append((task.payload, result))
            outstanding -= 1
            if on_result is not None:
                on_result(task.payload, result)

        def fault(
            task: _Task, kind: str, detail: str, pid: int | None = None
        ) -> None:
            nonlocal outstanding
            task.attempts += 1
            if self.split is not None:
                subs = self.split(task.payload)
                if subs:
                    # Degrade, don't retry: the faulting batch is
                    # replaced by its items, each with a fresh budget.
                    telemetry.event("supervise.split", pid=pid)
                    outstanding += len(subs) - 1
                    pending.extend(_Task(sub) for sub in subs)
                    return
            if task.attempts <= self.retries:
                telemetry.event(
                    "supervise.retry", pid=pid, attempts=task.attempts
                )
                ready = time.monotonic() + backoff_delay(
                    task.attempts, self.backoff
                )
                heapq.heappush(
                    retry_heap, (ready, next(tiebreak), task)
                )
            else:
                finalize(
                    task, WorkerFault(kind, detail, task.attempts)
                )

        def on_dead(worker: _Worker) -> None:
            task, worker.task = worker.task, None
            worker.discard()  # joins, so exitcode is settled
            code = worker.process.exitcode
            workers.remove(worker)
            if task is not None:
                telemetry.event(
                    "supervise.crash",
                    pid=worker.process.pid,
                    detail=f"exit code {code}",
                )
                fault(
                    task,
                    "crash",
                    f"worker died (exit code {code})",
                    pid=worker.process.pid,
                )

        def on_deadline(worker: _Worker) -> None:
            task, worker.task = worker.task, None
            budget = self.timeout
            if self.timeout_scale is not None and task is not None:
                budget = self.timeout * max(
                    1, self.timeout_scale(task.payload)
                )
            worker.discard()
            workers.remove(worker)
            if task is not None:
                telemetry.event(
                    "supervise.timeout",
                    pid=worker.process.pid,
                    detail=f"exceeded {budget:.1f}s",
                )
                fault(
                    task,
                    "timeout",
                    f"exceeded {budget:.1f}s wall clock",
                    pid=worker.process.pid,
                )

        try:
            while outstanding > 0:
                now = time.monotonic()
                while retry_heap and retry_heap[0][0] <= now:
                    pending.append(heapq.heappop(retry_heap)[2])
                for worker in workers:
                    if worker.task is None and pending:
                        self._dispatch(worker, pending.popleft())
                while pending and len(workers) < self.jobs:
                    worker = self._spawn()
                    workers.append(worker)
                    self._dispatch(worker, pending.popleft())
                busy = [w for w in workers if w.task is not None]
                if not busy:
                    if retry_heap:
                        time.sleep(
                            max(0.0, retry_heap[0][0] - now)
                        )
                        continue
                    if pending:  # pragma: no cover - defensive
                        continue
                    break
                wake_at = [
                    w.deadline for w in busy if w.deadline is not None
                ]
                if retry_heap:
                    wake_at.append(retry_heap[0][0])
                wait_s = (
                    None
                    if not wake_at
                    else max(0.0, min(wake_at) - time.monotonic())
                )
                handles = [w.conn for w in busy] + [
                    w.process.sentinel for w in busy
                ]
                ready = _wait_ready(handles, wait_s)
                now = time.monotonic()
                for worker in busy:
                    if worker.task is None:
                        continue
                    if worker.conn in ready or worker.conn.poll():
                        try:
                            result = worker.conn.recv()
                        except (EOFError, OSError):
                            on_dead(worker)
                            continue
                        task, worker.task = worker.task, None
                        if isinstance(result, _Relayed):
                            session = telemetry.active()
                            if session is not None:
                                for record in result.records:
                                    session.add(record)
                            result = result.result
                        if isinstance(result, _WorkerError):
                            telemetry.event(
                                "supervise.crash",
                                pid=worker.process.pid,
                                detail=f"raised: {result.detail}",
                            )
                            fault(
                                task,
                                "crash",
                                f"worker raised: {result.detail}",
                                pid=worker.process.pid,
                            )
                        else:
                            finalize(task, result)
                        if not worker.process.is_alive():
                            worker.discard()
                            workers.remove(worker)
                    elif (
                        worker.process.sentinel in ready
                        or not worker.process.is_alive()
                    ):
                        on_dead(worker)
                    elif (
                        worker.deadline is not None
                        and now >= worker.deadline
                    ):
                        on_deadline(worker)
        finally:
            self._shutdown(workers)
        return results

    @staticmethod
    def _shutdown(workers: list[_Worker]) -> None:
        for worker in workers:
            try:
                if worker.task is None and worker.process.is_alive():
                    worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 0.5
        for worker in workers:
            worker.process.join(
                timeout=max(0.0, deadline - time.monotonic())
            )
            worker.discard()
        workers.clear()
