"""The "physical synthesis" flow: lint -> bit-blast -> tech map.

One entry point, :func:`synthesize`, used by every bench and by the
top-level wrapper-synthesis API.  Mirrors the role of the commercial
synthesis tool in the paper's experimental setup.
"""

from __future__ import annotations

from ..rtl.emitter import emit_module
from ..rtl.lint import check
from ..rtl.module import Design, Module
from ..rtl.netlist import bit_blast
from ..rtl.techmap import VIRTEX2, TechMapper, TechModel
from .report import SynthesisReport


def synthesize(
    module: Module | Design,
    style: str = "",
    model: TechModel = VIRTEX2,
    rom_style: str = "auto",
    infer_srl: bool = True,
) -> SynthesisReport:
    """Run the full flow on ``module`` and return the report.

    Raises :class:`~repro.rtl.lint.LintError` on structural errors —
    generated wrappers must be clean by construction.
    """
    messages = check(module)
    netlist = bit_blast(module)
    mapper = TechMapper(netlist, model, rom_style)
    mapper.infer_srl = infer_srl
    mapping = mapper.run()
    top = module.top if isinstance(module, Design) else module
    verilog = emit_module(top)
    return SynthesisReport(
        name=top.name,
        style=style,
        mapping=mapping,
        verilog_lines=verilog.count("\n"),
        warnings=[str(m) for m in messages if m.severity == "warning"],
    )
