"""Compiled RTL simulation engine: lower the IR to flat Python.

The interpreter in :mod:`repro.rtl.simulator` walks every expression
tree per cycle through rename-map dict views.  This backend instead
*schedules once and executes straight-line*: a :class:`Design` is
elaborated one time and emitted as Python source for one flat
``settle`` function and one ``step`` function, which are ``exec``'d and
then called per cycle with a plain list environment.

Lowering pipeline (:func:`compile_design`):

1. **flatten** — walk the hierarchy exactly like the interpreter,
   assigning every distinct flat signal a *slot* (a list index);
   instance ports alias parent slots;
2. **schedule** — topologically order combinational items (continuous
   assigns and ROM reads) over slot dependencies, rejecting multiple
   drivers and combinational loops with the interpreter's
   :class:`~repro.rtl.simulator.SimulationError`;
3. **lower** — translate each expression to an inline Python source
   fragment over ``e[slot]`` reads, with width masking folded into the
   fragment (every *stored* value is already masked, so reads need no
   masks), constants folded bottom-up, and constant-valued nets
   propagated into their readers;
4. **prune** — combinational targets that feed no register, no
   top-level signal and no live net are moved out of the hot ``settle``
   body into a separate ``settle_dead`` function, run lazily only when
   such a net is actually peeked (the laziness is exact: a pending
   refresh is flushed *before* any poke mutates the environment);
5. **emit + cache** — register sampling and commits are unrolled into
   the generated ``step`` body (sample all, commit all, then the
   inlined settle body), ROMs become padded tuple lookups, and the
   whole kernel is compiled once per *shape*.

Cache-key contract: kernels are cached per worker process under the
structural key ``(slot count, generated source, ROM images)``.  The
generated source refers to signals only by slot index, so two designs
that differ merely in signal/module naming lower to byte-identical
source and share one kernel; widths, expression structure, register
forms and evaluation order are all reflected in the source text, and
ROM contents are keyed explicitly because they live in the kernel's
namespace rather than its source.  A second cache layer memoizes the
full per-module plan (kernel + name/slot/mask tables) by module
identity, so re-simulating the same :class:`Module` object — e.g. an
``RTLShell`` reset — skips elaboration entirely; the memo entry
carries an identity snapshot of the hierarchy's structural elements,
so a module mutated after compilation is transparently re-elaborated
instead of served stale.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict

from .ast import (
    BinOp,
    BitSelect,
    Concat,
    Const,
    Expr,
    Signal,
    Slice,
    Ternary,
    UnaryOp,
)
from .module import Design, Module, Register, Rom
from .simulator import SimulationError, Simulator

#: Cap on cached kernels per process; beyond it the least recently
#: used shape is evicted (bounds memory in long-lived verify workers).
KERNEL_CACHE_MAX = 128

#: ROMs whose address is at most this wide are padded to the full
#: address space so the generated read is a bare tuple index.
_ROM_PAD_LIMIT = 16


def _mask(width: int) -> int:
    return (1 << width) - 1


# -- expression lowering -------------------------------------------------------
#
# ``_lower`` returns either ("c", value) for a compile-time constant
# (already masked to the node's width) or ("s", source) for a Python
# fragment that yields a masked int.  Fragments are parenthesized, so
# composition never needs precedence analysis.


def _const_eval(expr: Expr, parts: list[tuple[str, int | str]]) -> int:
    """Fold a node whose children all lowered to constants by
    rebuilding it over ``Const`` leaves and running the interpreter's
    own ``evaluate`` — constant folding is exact by construction."""
    consts = [
        Const(int(value), child.width)
        for child, (_kind, value) in zip(expr.children(), parts)
    ]
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, consts[0]).evaluate({})
    if isinstance(expr, BinOp):
        return BinOp(expr.op, consts[0], consts[1]).evaluate({})
    if isinstance(expr, Ternary):
        return Ternary(consts[0], consts[1], consts[2]).evaluate({})
    if isinstance(expr, BitSelect):
        return BitSelect(consts[0], expr.index).evaluate({})
    if isinstance(expr, Slice):
        return Slice(consts[0], expr.msb, expr.lsb).evaluate({})
    if isinstance(expr, Concat):
        return Concat(consts).evaluate({})
    raise TypeError(f"cannot fold {type(expr).__name__}")


def _lower(
    expr: Expr,
    local: dict[int, int],
    const_slots: dict[int, int],
    used: set[int],
) -> tuple[str, int | str]:
    if isinstance(expr, Signal):
        slot = local[id(expr)]
        if slot in const_slots:
            return ("c", const_slots[slot])
        used.add(slot)
        return ("s", f"e[{slot}]")
    if isinstance(expr, Const):
        return ("c", expr.value)

    parts = [
        _lower(child, local, const_slots, used)
        for child in expr.children()
    ]
    if all(kind == "c" for kind, _ in parts):
        return ("c", _const_eval(expr, parts))

    if isinstance(expr, UnaryOp):
        (_, x) = parts[0]
        n = expr.operand.width
        if expr.op == "~":
            return ("s", f"(~{x} & {_mask(n)})")
        if expr.op == "&":
            return ("s", f"+({x} == {_mask(n)})")
        if expr.op == "|":
            return ("s", f"+({x} != 0)")
        return ("s", f"(({x}).bit_count() & 1)")  # ^ reduction

    if isinstance(expr, BinOp):
        return _lower_binop(expr, parts)

    if isinstance(expr, Ternary):
        ckind, cond = parts[0]
        if ckind == "c":
            return parts[1] if cond else parts[2]
        return (
            "s",
            f"({parts[1][1]} if {cond} else {parts[2][1]})",
        )

    if isinstance(expr, BitSelect):
        (_, x) = parts[0]
        if expr.index == 0:
            return ("s", f"({x} & 1)")
        return ("s", f"({x} >> {expr.index} & 1)")

    if isinstance(expr, Slice):
        (_, x) = parts[0]
        if expr.lsb == 0:
            return ("s", f"({x} & {_mask(expr.width)})")
        return ("s", f"({x} >> {expr.lsb} & {_mask(expr.width)})")

    if isinstance(expr, Concat):
        return _lower_concat(expr, parts)

    raise TypeError(f"cannot lower {type(expr).__name__}")


def _lower_binop(
    expr: BinOp, parts: list[tuple[str, int | str]]
) -> tuple[str, int | str]:
    op = expr.op
    (lk, a), (rk, b) = parts
    m = _mask(expr.width)
    # Width-safe identity folds (bitwise operands share one width; a
    # zero add/sub/shift never changes the already-masked value).
    if op in ("&", "|", "^"):
        if lk == "c" or rk == "c":
            c, other = (a, parts[1]) if lk == "c" else (b, parts[0])
            if op == "&" and c == m:
                return other
            if op == "&" and c == 0:
                return ("c", 0)
            if op in ("|", "^") and c == 0:
                return other
            if op == "|" and c == m:
                return ("c", m)
        return ("s", f"({a} {op} {b})")
    if op in ("+", "-"):
        if rk == "c" and b == 0:
            return parts[0]
        if op == "+" and lk == "c" and a == 0:
            return parts[1]
        return ("s", f"(({a} {op} {b}) & {m})")
    if op == "<<":
        if rk == "c":
            if b == 0:
                return parts[0]
            if b >= expr.width:
                return ("c", 0)
        return ("s", f"(({a} << {b}) & {m})")
    if op == ">>":
        if rk == "c":
            if b == 0:
                return parts[0]
            if b >= expr.left.width:
                return ("c", 0)
        return ("s", f"({a} >> {b})")
    # Comparison: unary plus coerces the bool to a stored int.
    return ("s", f"+({a} {op} {b})")


def _lower_concat(
    expr: Concat, parts: list[tuple[str, int | str]]
) -> tuple[str, int | str]:
    terms: list[str] = []
    const_acc = 0
    shift = expr.width
    for child, (kind, value) in zip(expr.parts, parts):
        shift -= child.width
        if kind == "c":
            const_acc |= int(value) << shift
        elif shift == 0:
            terms.append(str(value))
        else:
            terms.append(f"({value} << {shift})")
    if const_acc:
        terms.append(str(const_acc))
    if not terms:
        return ("c", 0)
    if len(terms) == 1:
        return ("s", terms[0])
    return ("s", f"({' | '.join(terms)})")


# -- elaboration ---------------------------------------------------------------


class _CombItem:
    """One combinational evaluation: a continuous assign or ROM read."""

    __slots__ = ("target", "expr", "rom", "local", "deps")

    def __init__(
        self,
        target: int,
        expr: Expr,
        rom: Rom | None,
        local: dict[int, int],
    ) -> None:
        self.target = target
        self.expr = expr
        self.rom = rom
        self.local = local
        self.deps = frozenset(
            local[id(signal)] for signal in expr.signals()
        )


class _RegItem:
    """One register with its slot-level rename map."""

    __slots__ = ("target", "reg", "local")

    def __init__(
        self, target: int, reg: Register, local: dict[int, int]
    ) -> None:
        self.target = target
        self.reg = reg
        self.local = local


class _Elaboration:
    """Flat slot-level view of a design (step 1 of the pipeline)."""

    def __init__(self, design: Design) -> None:
        self.names: list[str] = []
        self.widths: list[int] = []
        self.comb: list[_CombItem] = []
        self.regs: list[_RegItem] = []
        self.top_slots = 0
        self._flatten(design.top, prefix="", bindings={})

    def _new_slot(self, name: str, width: int) -> int:
        slot = len(self.names)
        self.names.append(name)
        self.widths.append(width)
        return slot

    def _flatten(
        self, module: Module, prefix: str, bindings: dict[int, int]
    ) -> None:
        local = dict(bindings)
        for signal in module.all_signals():
            if id(signal) in local:
                continue
            local[id(signal)] = self._new_slot(
                prefix + signal.name, signal.width
            )
        if prefix == "":
            self.top_slots = len(self.names)
        for assign in module.assigns:
            self.comb.append(
                _CombItem(
                    local[id(assign.target)], assign.expr, None, local
                )
            )
        for rom in module.roms:
            self.comb.append(
                _CombItem(local[id(rom.data)], rom.addr, rom, local)
            )
        for register in module.registers:
            self.regs.append(
                _RegItem(local[id(register.target)], register, local)
            )
        for instance in module.instances:
            child_bindings = {}
            for name, signal in instance.connections.items():
                port = instance.module.find_port(name)
                child_bindings[id(port.signal)] = local[id(signal)]
            self._flatten(
                instance.module,
                prefix=f"{prefix}{instance.name}.",
                bindings=child_bindings,
            )

    def schedule(self) -> list[int]:
        """Topological order over ``self.comb``; mirrors the
        interpreter's driver/loop diagnostics."""
        producers: dict[int, int] = {}
        for index, item in enumerate(self.comb):
            if item.target in producers:
                raise SimulationError(
                    f"multiple drivers for {self.names[item.target]!r}"
                )
            producers[item.target] = index
        order: list[int] = []
        state = [0] * len(self.comb)  # 0 new, 1 visiting, 2 done

        def visit(i: int) -> None:
            if state[i] == 2:
                return
            if state[i] == 1:
                raise SimulationError(
                    "combinational loop through "
                    f"{self.names[self.comb[i].target]!r}"
                )
            state[i] = 1
            for slot in self.comb[i].deps:
                j = producers.get(slot)
                if j is not None:
                    visit(j)
            state[i] = 2
            order.append(i)

        for i in range(len(self.comb)):
            visit(i)
        return order


# -- code emission -------------------------------------------------------------


class _Kernel:
    """One exec'd settle/step/settle_dead function triple."""

    __slots__ = (
        "settle",
        "step",
        "settle_dead",
        "dead_slots",
        "n_slots",
        "source",
    )

    def __init__(
        self,
        n_slots: int,
        source: str,
        rom_tables: list[tuple[int, ...]],
        dead_slots: frozenset[int],
    ) -> None:
        namespace: dict = {
            f"_rom{k}": table for k, table in enumerate(rom_tables)
        }
        exec(compile(source, "<compiled-rtl>", "exec"), namespace)
        self.settle = namespace["_settle"]
        self.step = namespace["_step"]
        self.settle_dead = namespace["_settle_dead"]
        self.dead_slots = dead_slots
        self.n_slots = n_slots
        self.source = source


class _Plan:
    """Everything a :class:`CompiledSimulator` needs for one module."""

    __slots__ = ("kernel", "name_slot", "masks")

    def __init__(
        self,
        kernel: _Kernel,
        name_slot: dict[str, int],
        masks: list[int],
    ) -> None:
        self.kernel = kernel
        self.name_slot = name_slot
        self.masks = masks


_KERNEL_CACHE: OrderedDict[tuple, _Kernel] = OrderedDict()
# Module -> (structure snapshot, plan).  The snapshot invalidates the
# memo when any module in the hierarchy is mutated after it was first
# compiled — whether through the builder methods or by touching the
# public lists directly — because the interpreter re-elaborates every
# construction and the compiled engine must notice too.  Holding the
# snapshotted items alive makes the identity comparison sound (a
# replaced item can never alias a snapshotted one).
_PLAN_MEMO: "weakref.WeakKeyDictionary[Module, tuple[tuple, _Plan]]" = (
    weakref.WeakKeyDictionary()
)


def _structure(design: Design) -> tuple:
    """Identity snapshot of every structural element per module.
    Unmutated designs compare equal at pointer speed (tuple comparison
    short-circuits on element identity)."""
    return tuple(
        (
            module,
            tuple(module.ports),
            tuple(module.wires),
            tuple(module.assigns),
            tuple(module.registers),
            tuple(module.roms),
            tuple(module.instances),
        )
        for module in design.modules()
    )


def kernel_cache_info() -> tuple[int, int]:
    """(cached kernels, capacity) — exposed for tests and diagnostics."""
    return len(_KERNEL_CACHE), KERNEL_CACHE_MAX


def _emit_comb_line(
    item: _CombItem,
    const_slots: dict[int, int],
    used: set[int],
    rom_tables: list[tuple[int, ...]],
) -> str:
    if item.rom is None:
        kind, value = _lower(item.expr, item.local, const_slots, used)
        if kind == "c":
            const_slots[item.target] = int(value)
        return f"e[{item.target}] = {value}"
    rom = item.rom
    akind, addr = _lower(item.expr, item.local, const_slots, used)
    if akind == "c":
        value = rom.read(int(addr))
        const_slots[item.target] = value
        return f"e[{item.target}] = {value}"
    index = len(rom_tables)
    if rom.addr.width <= _ROM_PAD_LIMIT:
        # Pad to the full address space: the address slot is already
        # masked, so the lookup can never go out of range, and reads
        # past the image return 0 exactly like ``Rom.read``.
        span = 1 << rom.addr.width
        rom_tables.append(
            rom.contents + (0,) * (span - len(rom.contents))
        )
        return f"e[{item.target}] = _rom{index}[{addr}]"
    rom_tables.append(rom.contents)
    return (
        f"e[{item.target}] = _rom{index}[_a] "
        f"if (_a := {addr}) < {len(rom.contents)} else 0"
    )


def _emit_reg_lines(
    regs: list[_RegItem],
    const_slots: dict[int, int],
    used: set[int],
) -> list[str]:
    """Sample-then-commit lines reproducing the interpreter's register
    semantics: reset wins, a deasserted enable holds, else load."""
    samples: list[str] = []
    commits: list[str] = []
    for item in regs:
        reg = item.reg
        target = item.target
        reset = (
            _lower(reg.reset, item.local, const_slots, used)
            if reg.reset is not None
            else None
        )
        enable = (
            _lower(reg.enable, item.local, const_slots, used)
            if reg.enable is not None
            else None
        )
        if reset is not None and reset[0] == "c" and not reset[1]:
            reset = None  # reset tied low: never fires
        if enable is not None and enable[0] == "c":
            if enable[1]:
                enable = None  # enable tied high: plain load
            elif reset is None:
                continue  # enable tied low, no reset: inert register
        if enable is not None and enable[0] == "c":
            sample = f"e[{target}]"  # tied low; only the reset can act
        else:
            sample = str(
                _lower(reg.next, item.local, const_slots, used)[1]
            )
            if enable is not None:
                sample = f"({sample} if {enable[1]} else e[{target}])"
        if reset is not None:
            if reset[0] == "c":  # tied high: unconditional reset
                sample = str(reg.reset_value)
            else:
                sample = (
                    f"({reg.reset_value} if {reset[1]} else {sample})"
                )
        name = f"t{len(samples)}"
        samples.append(f"{name} = {sample}")
        commits.append(f"e[{target}] = {name}")
    return samples + commits


def _emit(
    elab: _Elaboration,
) -> tuple[str, list[tuple[int, ...]], frozenset[int]]:
    """Lower a scheduled elaboration to (kernel source, ROM images,
    pruned dead-target slots)."""
    order = elab.schedule()
    const_slots: dict[int, int] = {}
    rom_tables: list[tuple[int, ...]] = []

    comb_lines: list[tuple[int, str]] = []  # (target, line) in order
    comb_used: list[set[int]] = []
    for i in order:
        used: set[int] = set()
        line = _emit_comb_line(
            elab.comb[i], const_slots, used, rom_tables
        )
        comb_lines.append((elab.comb[i].target, line))
        comb_used.append(used)

    reg_used: set[int] = set()
    reg_lines = _emit_reg_lines(elab.regs, const_slots, reg_used)

    # Liveness: a combinational target matters if a register samples
    # it, it is visible at top level, or a live net reads it.
    live: set[int] = set(reg_used)
    live.update(range(elab.top_slots))
    live_flags = [False] * len(comb_lines)
    for pos in range(len(comb_lines) - 1, -1, -1):
        target, _line = comb_lines[pos]
        if target in live:
            live_flags[pos] = True
            live.update(comb_used[pos])
    settle_lines = [
        line
        for (_t, line), flag in zip(comb_lines, live_flags)
        if flag
    ]
    dead_lines = [
        line
        for (_t, line), flag in zip(comb_lines, live_flags)
        if not flag
    ]
    dead_slots = frozenset(
        target
        for (target, _line), flag in zip(comb_lines, live_flags)
        if not flag
    )

    def body(lines: list[str], indent: str) -> str:
        if not lines:
            return f"{indent}pass"
        return "\n".join(indent + line for line in lines)

    source = "\n".join(
        [
            "def _settle(e):",
            body(settle_lines, "    "),
            "",
            "def _settle_dead(e):",
            body(dead_lines, "    "),
            "",
            "def _step(e, cycles):",
            "    for _ in range(cycles):",
            body(reg_lines + settle_lines, "        "),
            "",
        ]
    )
    return source, rom_tables, dead_slots


def compile_design(design: Design | Module) -> _Plan:
    """Elaborate + lower + compile one design, memoized per module."""
    if isinstance(design, Module):
        design = Design(design)
    structure = _structure(design)
    memoized = _PLAN_MEMO.get(design.top)
    if memoized is not None and memoized[0] == structure:
        return memoized[1]
    elab = _Elaboration(design)
    source, rom_tables, dead_slots = _emit(elab)
    key = (
        len(elab.names),
        source,
        tuple(rom_tables),
        dead_slots,
    )
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        kernel = _Kernel(
            len(elab.names), source, rom_tables, dead_slots
        )
        _KERNEL_CACHE[key] = kernel
        if len(_KERNEL_CACHE) > KERNEL_CACHE_MAX:
            _KERNEL_CACHE.popitem(last=False)
    else:
        _KERNEL_CACHE.move_to_end(key)
    name_slot: dict[str, int] = {}
    for slot, name in enumerate(elab.names):
        name_slot.setdefault(name, slot)
    masks = [_mask(width) for width in elab.widths]
    plan = _Plan(kernel, name_slot, masks)
    _PLAN_MEMO[design.top] = (structure, plan)
    return plan


# -- the engine ----------------------------------------------------------------


class CompiledSimulator(Simulator):
    """Drop-in :class:`~repro.rtl.simulator.Simulator` running exec'd
    straight-line kernels over a slot-list environment."""

    engine = "compiled"

    def __init__(
        self, design: Design | Module, engine: str | None = None
    ) -> None:
        plan = compile_design(design)
        self._kernel = plan.kernel
        self._name_slot = plan.name_slot
        self._masks = plan.masks
        self._env: list[int] = [0] * plan.kernel.n_slots
        self._dead_stale = False
        self.cycle = 0
        self.settle()

    @property
    def source(self) -> str:
        """The generated kernel source (for inspection and tests)."""
        return self._kernel.source

    # -- environment access ----------------------------------------------------

    def _slot(self, name: str) -> int:
        slot = self._name_slot.get(name)
        if slot is None:
            raise KeyError(f"no signal named {name!r} in top module")
        return slot

    def _refresh_dead(self) -> None:
        self._kernel.settle_dead(self._env)
        self._dead_stale = False

    def poke(self, name: str, value: int) -> None:
        """Drive a top-level input (propagates at the next settle/step)."""
        if self._dead_stale:
            # Flush pruned nets against the pre-poke environment so a
            # later peek sees exactly the values of the last settle.
            self._refresh_dead()
        slot = self._slot(name)
        self._env[slot] = value & self._masks[slot]

    def poke_settle(self, name: str, value: int) -> None:
        """Poke and immediately settle combinational logic."""
        self.poke(name, value)
        self.settle()

    def peek(self, name: str) -> int:
        """Read a top-level signal's settled value."""
        slot = self._slot(name)
        if self._dead_stale and slot in self._kernel.dead_slots:
            self._refresh_dead()
        return self._env[slot]

    def peek_flat(self, flat_name: str) -> int:
        """Read a hierarchical flat name, e.g. ``"sp0.state"``."""
        slot = self._name_slot[flat_name]
        if self._dead_stale and slot in self._kernel.dead_slots:
            self._refresh_dead()
        return self._env[slot]

    def flat_names(self) -> list[str]:
        return sorted(self._name_slot)

    # -- execution ---------------------------------------------------------------

    def settle(self) -> None:
        """Propagate combinational logic (one straight-line pass)."""
        self._kernel.settle(self._env)
        if self._kernel.dead_slots:
            self._dead_stale = True

    def step(self, cycles: int = 1) -> None:
        """Advance the clock by ``cycles`` rising edges."""
        self._kernel.step(self._env, cycles)
        self.cycle += cycles
        if cycles and self._kernel.dead_slots:
            self._dead_stale = True
