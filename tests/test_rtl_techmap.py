"""Technology mapping: LUT covering, slices, ROM styles, SRL, timing."""

from __future__ import annotations

import pytest

from repro.rtl.ast import Concat, Const, all_of
from repro.rtl.module import Module
from repro.rtl.netlist import bit_blast
from repro.rtl.techmap import VIRTEX2, TechMapper, TechModel, tech_map


def _wide_and(n_inputs: int) -> Module:
    m = Module("wide_and")
    sigs = [m.input(f"i{k}") for k in range(n_inputs)]
    y = m.output("y")
    m.assign(y, all_of(sigs))
    return m


class TestLutCovering:
    def test_single_lut_for_4_input_function(self):
        rep = tech_map(bit_blast(_wide_and(4)))
        assert rep.luts == 1
        assert rep.lut_levels == 1

    def test_two_levels_for_16_inputs(self):
        rep = tech_map(bit_blast(_wide_and(16)))
        assert rep.luts == 5  # 4 first-level + 1 combiner
        assert rep.lut_levels == 2

    def test_lut_count_grows_with_inputs(self):
        sizes = [tech_map(bit_blast(_wide_and(n))).luts
                 for n in (4, 8, 16, 32, 64)]
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]

    def test_constant_output_costs_nothing(self):
        m = Module("m")
        a = m.input("a", 4)
        y = m.output("y", 4)
        m.assign(y, a & Const(0, 4))
        rep = tech_map(bit_blast(m))
        assert rep.luts == 0

    def test_levels_grow_logarithmically(self):
        l16 = tech_map(bit_blast(_wide_and(16))).lut_levels
        l256 = tech_map(bit_blast(_wide_and(256))).lut_levels
        assert l256 <= l16 * 2 + 1


class TestSlices:
    def test_two_luts_per_slice(self):
        m = Module("m")
        a = m.input("a", 8)
        b = m.input("b", 8)
        y = m.output("y", 8)
        m.assign(y, a & b)  # 8 independent LUTs
        rep = tech_map(bit_blast(m))
        assert rep.luts == 8
        assert rep.slices == 4

    def test_ff_dominated_slices(self):
        m = Module("m")
        m.add_clock()
        d = m.input("d", 16)
        q = m.output("q", 16)
        m.register(q, d)
        rep = tech_map(bit_blast(m), rom_style="auto")
        mapper = TechMapper(bit_blast(m))
        mapper.infer_srl = False
        rep = mapper.run()
        assert rep.ffs == 16
        assert rep.slices == 8

    def test_minimum_one_slice(self):
        m = Module("m")
        a = m.input("a")
        y = m.output("y")
        m.assign(y, a)
        assert tech_map(bit_blast(m)).slices == 1


class TestCarryChains:
    def test_adder_uses_carry_cells(self):
        m = Module("m")
        a = m.input("a", 16)
        b = m.input("b", 16)
        y = m.output("y", 16)
        m.assign(y, a + b)
        rep = tech_map(bit_blast(m))
        assert rep.carry_cells >= 14
        # Carry chain keeps LUT levels shallow.
        assert rep.lut_levels <= 3

    def test_adder_fast_despite_width(self):
        def fmax(width):
            m = Module("m")
            m.add_clock()
            rst = m.input("rst")
            q = m.output("q", width)
            m.register(q, q + 1, reset=rst)
            return tech_map(bit_blast(m)).fmax_mhz

        # A 32-bit counter must not be ~4x slower than an 8-bit one.
        assert fmax(32) > fmax(8) * 0.5


class TestRomStyles:
    def _rom_module(self, depth, width=8):
        m = Module("m")
        addr_w = max(1, (depth - 1).bit_length())
        addr = m.input("addr", addr_w)
        data = m.output("data", width)
        m.rom("r", addr, data, list(range(depth * 0 + depth)) if depth <= 256
              else [i % 256 for i in range(depth)])
        return m

    def test_small_rom_distributed(self):
        rep = tech_map(bit_blast(self._rom_module(16)), rom_style="auto")
        assert rep.rom_style == "distributed"
        assert rep.brams == 0
        assert rep.rom_luts >= 8  # one LUT per output bit at depth 16

    def test_large_rom_block(self):
        rep = tech_map(bit_blast(self._rom_module(1024)), rom_style="auto")
        assert rep.rom_style == "block"
        assert rep.brams >= 1
        assert rep.rom_luts == 0

    def test_forced_distributed(self):
        rep = tech_map(
            bit_blast(self._rom_module(1024)), rom_style="distributed"
        )
        assert rep.rom_style == "distributed"
        assert rep.rom_luts > 100

    def test_forced_block(self):
        rep = tech_map(bit_blast(self._rom_module(16)), rom_style="block")
        assert rep.brams == 1

    def test_bad_style_rejected(self):
        with pytest.raises(ValueError):
            TechMapper(bit_blast(self._rom_module(16)), rom_style="magic")

    def test_bram_count_scales_with_bits(self):
        small = tech_map(
            bit_blast(self._rom_module(1024, 8)), rom_style="block"
        )
        # 4096 x 8 = 32 Kib > one 18 Kib BRAM
        m = Module("m")
        addr = m.input("addr", 12)
        data = m.output("data", 8)
        m.rom("r", addr, data, [i % 256 for i in range(4096)])
        big = tech_map(bit_blast(m), rom_style="block")
        assert big.brams > small.brams


class TestSrlInference:
    def _shift_chain(self, length, with_feedback=False):
        m = Module("m")
        m.add_clock()
        d = m.input("d")
        chain = m.wire("chain", length)
        q = m.output("q")
        head = chain.bit(0) if with_feedback else d
        m.register(
            chain,
            Concat([head, chain.slice(length - 1, 1)])
            if length > 1
            else head,
        )
        m.assign(q, chain.bit(0))
        return m

    def test_long_chain_folds(self):
        netlist = bit_blast(self._shift_chain(32))
        mapper = TechMapper(netlist)
        rep = mapper.run()
        assert rep.ffs == 0
        assert rep.luts == 2  # ceil(32/16)

    def test_inference_can_be_disabled(self):
        netlist = bit_blast(self._shift_chain(32))
        mapper = TechMapper(netlist)
        mapper.infer_srl = False
        rep = mapper.run()
        assert rep.ffs == 32

    def test_short_chain_not_folded(self):
        netlist = bit_blast(self._shift_chain(2))
        rep = TechMapper(netlist).run()
        assert rep.ffs == 2

    def test_ring_folds(self):
        netlist = bit_blast(self._shift_chain(24, with_feedback=True))
        rep = TechMapper(netlist).run()
        assert rep.ffs == 0
        assert rep.luts == 2


class TestTiming:
    def test_fmax_decreases_with_depth(self):
        shallow = tech_map(bit_blast(_wide_and(4))).fmax_mhz
        deep = tech_map(bit_blast(_wide_and(256))).fmax_mhz
        assert deep < shallow

    def test_period_includes_overheads(self):
        rep = tech_map(bit_blast(_wide_and(4)))
        model = VIRTEX2
        floor = model.t_setup + model.t_clock_skew
        assert rep.period_ns > floor

    def test_custom_model_changes_results(self):
        slow = TechModel(name="slow", t_lut=5.0)
        base = tech_map(bit_blast(_wide_and(16)))
        slowed = tech_map(bit_blast(_wide_and(16)), model=slow)
        assert slowed.fmax_mhz < base.fmax_mhz

    def test_report_summary_mentions_slices(self):
        rep = tech_map(bit_blast(_wide_and(8)))
        assert "slices" in rep.summary()
        assert rep.name == "wide_and"
