"""Legacy setup shim: this environment has no `wheel` package, so PEP 660
editable installs cannot build; `pip install -e . --no-use-pep517
--no-build-isolation` (or plain `pip install -e .` with new pips) falls
back to `setup.py develop`, which needs this file.  All metadata lives in
pyproject.toml (PEP 621), which setuptools>=61 reads natively.
"""
from setuptools import setup

setup(
    # NumPy is optional: the vectorized verify engine's lane-batched
    # harness (repro.verify.lanestep) imports it behind a guard and
    # falls back to a per-lane object loop — identical results, scalar
    # speed — when it is absent.  Install with `.[fast]` to hit the
    # benchmarked 10x lane-batch throughput.
    extras_require={"fast": ["numpy>=1.22"]},
)
