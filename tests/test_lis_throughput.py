"""Throughput analysis: cycle ratios, analytic-vs-measured agreement."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import IOSchedule, SyncPoint
from repro.core.wrappers import SPWrapper
from repro.lis.pearl import FunctionPearl
from repro.lis.simulator import Simulation
from repro.lis.system import System
from repro.lis.throughput import MarkedGraph, system_marked_graph


class TestMarkedGraph:
    def test_acyclic_graph_full_throughput(self):
        g = MarkedGraph()
        g.add_channel("a", "b", latency=3)
        g.add_channel("b", "c", latency=2)
        assert g.throughput_enumerated() == 1

    def test_single_loop(self):
        g = MarkedGraph()
        g.add_channel("a", "b", latency=1, tokens=1)
        g.add_channel("b", "a", latency=1, tokens=0)
        # cycle latency = (1+1) + (1+1) = 4, tokens = 1
        assert g.throughput_enumerated() == Fraction(1, 4)

    def test_tokens_raise_throughput(self):
        g = MarkedGraph()
        g.add_channel("a", "b", latency=1, tokens=2)
        g.add_channel("b", "a", latency=1, tokens=0)
        assert g.throughput_enumerated() == Fraction(2, 4)

    def test_relay_station_lowers_loop_throughput(self):
        g1 = MarkedGraph()
        g1.add_channel("a", "b", latency=1, tokens=1)
        g1.add_channel("b", "a", latency=1)
        g2 = MarkedGraph()
        g2.add_channel("a", "b", latency=3, tokens=1)  # 2 relay stations
        g2.add_channel("b", "a", latency=1)
        assert g2.throughput_enumerated() < g1.throughput_enumerated()

    def test_tokenless_loop_deadlocks(self):
        g = MarkedGraph()
        g.add_channel("a", "b")
        g.add_channel("b", "a")
        assert g.throughput_enumerated() == 0

    def test_worst_loop_dominates(self):
        g = MarkedGraph()
        g.add_channel("a", "b", latency=1, tokens=1)
        g.add_channel("b", "a", latency=1, tokens=1)
        g.add_channel("a", "c", latency=5, tokens=1)
        g.add_channel("c", "a", latency=5, tokens=0)
        bottleneck = g.bottleneck_cycle()
        assert bottleneck is not None
        nodes, ratio = bottleneck
        assert set(nodes) == {"a", "c"}
        assert ratio == Fraction(1, 12)

    def test_parallel_edges_choose_worst_combination(self):
        """Regression: per-hop min-own-ratio edge choice is unsound
        (mediant inequality); the Dinkelbach selection must find the
        true minimum cycle ratio over edge combinations."""
        g = MarkedGraph()
        # Two parallel a->b channels: (tokens 2, latency 1) has own
        # ratio 1, (tokens 0, latency 3) has own ratio 0.
        g.add_channel("a", "b", latency=1, tokens=2)
        g.add_channel("a", "b", latency=3, tokens=0)
        g.add_channel("b", "a", latency=1, tokens=1)
        # Combination 1: (2+1)/(2+2) = 3/4; combination 2: (0+1)/(4+2)
        # = 1/6 — the minimum.
        assert g.throughput_enumerated() == Fraction(1, 6)
        assert g.throughput_parametric() == Fraction(1, 6)

    def test_parallel_edges_mediant_trap(self):
        """A case where the min-own-ratio edge is NOT the binding one."""
        g = MarkedGraph()
        # Edge X: tokens 1, latency 9 (own ratio 1/10, the 'worst').
        # Edge Y: tokens 0, latency 1 (own ratio 0).
        g.add_channel("a", "b", latency=9, tokens=1)
        g.add_channel("a", "b", latency=1, tokens=0)
        g.add_channel("b", "a", latency=1, tokens=5)
        # With X: (1+5)/(10+2) = 1/2; with Y: (0+5)/(2+2) = 5/4 -> X
        # binds even though Y's own ratio is smaller.
        assert g.throughput_enumerated() == Fraction(1, 2)

    def test_bad_latency_rejected(self):
        g = MarkedGraph()
        with pytest.raises(ValueError):
            g.add_channel("a", "b", latency=0)

    def test_negative_tokens_rejected(self):
        g = MarkedGraph()
        with pytest.raises(ValueError):
            g.add_channel("a", "b", tokens=-1)


class TestParametricAgreesWithEnumeration:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_random_graphs(self, data):
        n = data.draw(st.integers(2, 6))
        g = MarkedGraph()
        for i in range(n):
            g.add_process(f"p{i}")
        n_edges = data.draw(st.integers(1, 10))
        for _ in range(n_edges):
            u = data.draw(st.integers(0, n - 1))
            v = data.draw(st.integers(0, n - 1))
            if u == v:
                continue
            g.add_channel(
                f"p{u}",
                f"p{v}",
                latency=data.draw(st.integers(1, 4)),
                tokens=data.draw(st.integers(0, 2)),
            )
        exact = g.throughput_enumerated()
        approx = g.throughput_parametric()
        assert abs(exact - approx) < Fraction(1, 10**6)

    def test_parametric_on_acyclic(self):
        g = MarkedGraph()
        g.add_channel("a", "b", latency=2)
        assert g.throughput_parametric() == 1


class TestMeasuredVsAnalytic:
    def _ring(self, n_nodes: int, extra_latency: int):
        """Feedback ring of passthrough pearls; one node injects an
        initial token (credit) so the loop is live."""
        sched = IOSchedule(
            ["x"], ["y"], [SyncPoint({"x"}, {"y"})]
        )

        def make(name, primed):
            first = {"done": not primed}

            def fn(index, popped):
                return {"y": popped["x"] + 1}

            return FunctionPearl(name, sched, fn)

        system = System("ring")
        shells = []
        for i in range(n_nodes):
            pearl = make(f"n{i}", primed=(i == 0))
            shells.append(system.add_patient(SPWrapper(pearl)))
        for i in range(n_nodes):
            producer = shells[i]
            consumer = shells[(i + 1) % n_nodes]
            latency = 1 + (extra_latency if i == 0 else 0)
            system.connect(producer, "y", consumer, "x", latency=latency)
        # Prime the loop: inject one token into node 0's input port.
        shells[0].in_ports["x"]._fifo.append(0)
        return system, shells

    @pytest.mark.parametrize("n_nodes,extra", [(2, 0), (3, 0), (2, 2), (4, 1)])
    def test_ring_throughput(self, n_nodes, extra):
        system, shells = self._ring(n_nodes, extra)
        cycles = 600
        Simulation(system).run(cycles)
        measured = shells[0].enabled_cycles / cycles

        analytic = MarkedGraph()
        for i in range(n_nodes):
            latency = 1 + (extra if i == 0 else 0)
            analytic.add_channel(
                f"n{i}",
                f"n{(i + 1) % n_nodes}",
                latency=latency,
                tokens=1 if i == n_nodes - 1 else 0,
            )
        expected = float(analytic.throughput_enumerated())
        assert measured == pytest.approx(expected, rel=0.1)

    def test_system_marked_graph_extraction(self):
        system, shells = self._ring(3, 1)
        marked = system_marked_graph(system)
        assert set(marked.graph.nodes) == {"n0", "n1", "n2"}
        assert marked.graph.number_of_edges() == 3
