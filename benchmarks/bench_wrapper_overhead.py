"""Ablation C — system throughput per wrapper style under irregular
traffic.

Quantifies the qualitative comparison of the paper's §2-3 on a running
SoC:

* the **combinational** wrapper over-synchronizes — it stalls the IP on
  ports the current operation does not need;
* the **FSM** and **SP** wrappers test only the relevant subset (the
  SP matching the FSM cycle-for-cycle);
* the **shift-register** wrapper cannot run at all once streams are
  irregular (its hypothesis is violated — it throws).

Workload: a 2-input/1-output block processor whose schedule touches
ports alternately, fed by one steady and one bursty source.
"""

from __future__ import annotations

import pytest

from repro.core.schedule import IOSchedule, SyncPoint
from repro.core.wrappers import (
    CombinationalWrapper,
    FSMWrapper,
    ShiftRegisterWrapper,
    SPWrapper,
)
from repro.lis.pearl import FunctionPearl
from repro.lis.shell import ShellError
from repro.lis.simulator import Simulation
from repro.lis.stream import bernoulli_gaps, burst_gaps
from repro.lis.system import System

from _bench_common import write_result

# The coefficient port is needed at only ONE of the four sync points
# (rate 1/8 of cycles); its tokens arrive at rate 1/6 — sufficient for
# a subset-aware wrapper, but the combinational wrapper gates *every*
# cycle on the port's not-empty and starves whenever the small FIFO
# drains between arrivals.
SCHEDULE = IOSchedule(
    ["data", "coeff"], ["out"],
    [
        SyncPoint({"data"}, frozenset(), run=1),
        SyncPoint({"data"}, frozenset(), run=1),
        SyncPoint({"data"}, frozenset(), run=1),
        SyncPoint({"data", "coeff"}, {"out"}, run=1),
    ],
)

CYCLES = 3000
COEFF_GAPS = burst_gaps(1, 7)  # one coefficient token every 8 cycles
# Minimal port FIFOs: deeper buffers can mask over-synchronization, at
# an area cost the combinational wrapper's simplicity is supposed to
# avoid — depth 1 exposes the policy difference itself.
PORT_DEPTH = 1


def _make_pearl():
    state = {"acc": 0}

    def fn(index, popped):
        if index < 3:
            state["acc"] += popped["data"]
            return {}
        out = (state["acc"] + popped["data"]) * max(popped["coeff"], 1)
        state["acc"] = 0
        return {"out": out}

    return FunctionPearl("proc", SCHEDULE, fn)


def _run(wrapper_cls, **kw):
    kw.setdefault("port_depth", PORT_DEPTH)
    shell = wrapper_cls(_make_pearl(), **kw)
    system = System("overhead")
    system.add_patient(shell)
    system.connect_source(
        "data_src", iter(range(10**6)), shell, "data"
    )
    system.connect_source(
        "coeff_src",
        iter([2, 3] * (10**5)),
        shell,
        "coeff",
        gaps=COEFF_GAPS,
        latency=3,
    )
    sink = system.connect_sink(shell, "out", "snk")
    result = Simulation(system).run(CYCLES)
    return {
        "tokens": len(sink.received),
        "throughput": len(sink.received) / CYCLES,
        "enabled": shell.enabled_cycles,
        "stalled": shell.stall_cycles,
        "utilization": shell.enabled_cycles / CYCLES,
    }


def _sweep():
    results = {}
    for name, cls in (
        ("sp", SPWrapper),
        ("fsm", FSMWrapper),
        ("combinational", CombinationalWrapper),
    ):
        results[name] = _run(cls)
    # The static wrapper must fail under this irregular traffic.
    try:
        _run(ShiftRegisterWrapper)
        results["shiftreg"] = {"violated": False}
    except ShellError as exc:
        results["shiftreg"] = {"violated": True, "error": str(exc)[:90]}
    return results


def test_wrapper_overhead(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    sp = results["sp"]
    fsm = results["fsm"]
    comb = results["combinational"]

    # SP == FSM (functional equivalence under load).
    assert sp["tokens"] == fsm["tokens"]
    assert sp["enabled"] == fsm["enabled"]
    # Combinational wrapper over-synchronizes: strictly fewer tokens on
    # this partial-port schedule with a bursty side input.
    assert comb["tokens"] < sp["tokens"]
    assert comb["stalled"] > sp["stalled"]
    # Static scheduling breaks under irregularity.
    assert results["shiftreg"]["violated"]

    benchmark.extra_info.update(
        sp_throughput=round(sp["throughput"], 4),
        comb_throughput=round(comb["throughput"], 4),
    )
    penalty = 100 * (1 - comb["tokens"] / sp["tokens"])
    lines = [
        "System throughput per wrapper style "
        f"(irregular coefficient stream, {CYCLES} cycles)",
        "",
        f"{'wrapper':>14} | {'tokens':>7} {'thr/cyc':>8} "
        f"{'IP util':>8} {'stalls':>7}",
        "-" * 55,
    ]
    for name in ("sp", "fsm", "combinational"):
        r = results[name]
        lines.append(
            f"{name:>14} | {r['tokens']:>7} {r['throughput']:>8.4f} "
            f"{r['utilization']:>8.3f} {r['stalled']:>7}"
        )
    lines.append(
        f"{'shiftreg':>14} | static schedule violated -> "
        "wrapper unusable under jitter"
    )
    lines.append("")
    lines.append(
        f"Over-synchronization penalty of the combinational wrapper: "
        f"{penalty:.1f}% fewer output tokens than SP/FSM."
    )
    write_result("wrapper_overhead.txt", "\n".join(lines))
