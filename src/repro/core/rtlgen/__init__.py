"""Wrapper RTL generators: one per synchronization style.

All generators produce :class:`~repro.rtl.module.Module` objects with
the identical FIFO-style interface described in
:mod:`repro.core.rtlgen.common`, ready for Verilog emission, RTL
simulation and technology mapping.
"""

from .comb import generate_comb_wrapper
from .common import WrapperInterface, sanitize, select_by_value
from .fsm import generate_fsm_wrapper
from .lis_fabric import generate_relay_station
from .shiftreg import compute_port_patterns, generate_shiftreg_wrapper
from .testbench import generate_sp_testbench
from .sp import ST_READ, ST_RESET, ST_RUN, generate_sp_wrapper

__all__ = [
    "ST_READ",
    "ST_RESET",
    "ST_RUN",
    "WrapperInterface",
    "compute_port_patterns",
    "generate_comb_wrapper",
    "generate_fsm_wrapper",
    "generate_relay_station",
    "generate_shiftreg_wrapper",
    "generate_sp_testbench",
    "generate_sp_wrapper",
    "sanitize",
    "select_by_value",
]
