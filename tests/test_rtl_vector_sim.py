"""Differential tests: lane-packed vector RTL engine vs the scalar
compiled engine.

A :class:`VectorSimulator` packs W independent simulations of one
module into integer word lanes; each lane must be observationally
identical to a scalar :class:`CompiledSimulator` of the same module
driven with the same inputs — including lanes that receive *different*
inputs and diverge mid-run.  Covered here: the golden wrapper styles,
seeded random topology wrappers, partial lane counts, the packed
control/status bundles, broadcast, and the scalar fallback of
``engine="vectorized"``.
"""

from __future__ import annotations

import random

import pytest

from repro.core.rtlgen.shiftreg import (
    generate_shiftreg_lane_wrapper,
    generate_shiftreg_wrapper,
)
from repro.core.schedule import IOSchedule, SyncPoint
from repro.core.synthesis import SYNTH_STYLES, synthesize_wrapper
from repro.rtl.compile_sim import (
    CompiledSimulator,
    VectorSimulator,
    compile_vector_design,
    kernel_cache_info,
)
from repro.rtl.simulator import ENGINES, Simulator
from repro.sched.generate import random_topology
from repro.verify.styles import get_style
from repro.verify.vectorize import _control_bundle, _status_bundle


def _reference_schedule() -> IOSchedule:
    return IOSchedule(
        ["a", "b"],
        ["y", "status"],
        [
            SyncPoint({"a"}, frozenset(), run=1),
            SyncPoint({"a", "b"}, frozenset(), run=3),
            SyncPoint(frozenset(), {"y"}),
            SyncPoint(frozenset(), {"y", "status"}, run=2),
        ],
    )


def _assert_lane_parity(module, lanes, cycles, seed):
    """Drive each vector lane and a private scalar simulator with
    identical per-lane random pokes; compare every output port every
    cycle.  Per-lane streams differ, so lanes genuinely diverge."""
    scalars = [CompiledSimulator(module) for _ in range(lanes)]
    vec = VectorSimulator(module, lanes)
    inputs = [
        p.name
        for p in module.input_ports
        if p.name not in ("clk", "rst")
    ]
    outputs = [p.name for p in module.output_ports]
    for scalar in scalars:
        scalar.poke("rst", 1)
        scalar.step()
        scalar.poke("rst", 0)
    vec.broadcast("rst", 1)
    vec.step()
    vec.broadcast("rst", 0)
    rng = random.Random(seed)
    for cycle in range(cycles):
        for lane, scalar in enumerate(scalars):
            view = vec.lane(lane)
            for name in inputs:
                value = rng.getrandbits(1)
                scalar.poke(name, value)
                view.poke(name, value)
        for scalar in scalars:
            scalar.settle()
        vec.settle()
        for lane, scalar in enumerate(scalars):
            view = vec.lane(lane)
            for name in outputs:
                assert view.peek(name) == scalar.peek(name), (
                    f"cycle {cycle}, lane {lane}, signal {name!r}"
                )
        for scalar in scalars:
            scalar.step()
        vec.step()
        assert vec.cycle == cycle + 2  # +1 for the reset step


class TestGoldenWrapperParity:
    @pytest.mark.parametrize("style", SYNTH_STYLES)
    def test_golden_wrapper_styles(self, style):
        module = synthesize_wrapper(
            _reference_schedule(),
            style,
            name=f"vec_{style.replace('-', '_')}",
        ).module
        _assert_lane_parity(
            module, lanes=4, cycles=60,
            seed=SYNTH_STYLES.index(style),
        )

    @pytest.mark.parametrize("lanes", [1, 2, 5, 32])
    def test_partial_and_full_lane_counts(self, lanes):
        module = synthesize_wrapper(
            _reference_schedule(), "sp", name=f"vec_l{lanes}"
        ).module
        _assert_lane_parity(module, lanes=lanes, cycles=40, seed=lanes)


class TestRandomTopologyParity:
    @pytest.mark.parametrize("seed", range(20))
    def test_topology_wrappers(self, seed):
        """Every process wrapper of 20 seeded random topologies,
        under both vectorizable styles, stays lane-exact."""
        topology = random_topology(seed)
        for style in ("rtl-sp", "rtl-fsm"):
            parts = get_style(style).rtl_parts
            for node in topology.processes:
                module, _program = parts(node)
                _assert_lane_parity(
                    module, lanes=3, cycles=30, seed=seed
                )


class TestBundles:
    def _bundled(self, lanes=3):
        schedule = _reference_schedule()
        module = synthesize_wrapper(
            schedule, "sp", name="vec_bundle"
        ).module
        vec = VectorSimulator(
            module,
            lanes,
            poke_bundle=_control_bundle(schedule),
            peek_bundle=_status_bundle(schedule),
        )
        return schedule, module, vec

    def test_bundle_matches_individual_pokes(self):
        """Packed poke_control/peek_status must equal poking/peeking
        the bundle signals one by one on a scalar simulator."""
        schedule, module, vec = self._bundled()
        scalars = [CompiledSimulator(module) for _ in range(3)]
        controls = _control_bundle(schedule)
        statuses = _status_bundle(schedule)
        for scalar in scalars:
            scalar.poke("rst", 1)
            scalar.step()
            scalar.poke("rst", 0)
        vec.broadcast("rst", 1)
        vec.step()
        vec.broadcast("rst", 0)
        rng = random.Random(7)
        for cycle in range(50):
            for lane, scalar in enumerate(scalars):
                bits = rng.getrandbits(len(controls))
                for position, name in enumerate(controls):
                    scalar.poke(name, bits >> position & 1)
                vec.lane(lane).poke_control(bits)
            for scalar in scalars:
                scalar.settle()
            vec.settle()
            for lane, scalar in enumerate(scalars):
                status = vec.lane(lane).peek_status()
                for position, name in enumerate(statuses):
                    assert status >> position & 1 == scalar.peek(
                        name
                    ), f"cycle {cycle}, lane {lane}, {name!r}"
            for scalar in scalars:
                scalar.step()
            vec.step()

    def test_bundle_requires_one_bit_known_signals(self):
        module = synthesize_wrapper(
            _reference_schedule(), "sp", name="vec_badbundle"
        ).module
        with pytest.raises(Exception):
            VectorSimulator(
                module, 2, poke_bundle=("no_such_signal",)
            )

    def test_unbundled_lane_rejects_packed_access(self):
        module = synthesize_wrapper(
            _reference_schedule(), "sp", name="vec_nobundle"
        ).module
        lane = VectorSimulator(module, 2).lane(0)
        with pytest.raises(RuntimeError):
            lane.poke_control(0)
        with pytest.raises(RuntimeError):
            lane.peek_status()

    def test_lane_index_bounds(self):
        module = synthesize_wrapper(
            _reference_schedule(), "sp", name="vec_bounds"
        ).module
        vec = VectorSimulator(module, 2)
        with pytest.raises(IndexError):
            vec.lane(2)
        with pytest.raises(IndexError):
            vec.lane(-1)


class TestBroadcast:
    def test_broadcast_equals_per_lane_pokes(self):
        module = synthesize_wrapper(
            _reference_schedule(), "sp", name="vec_bcast"
        ).module
        a = VectorSimulator(module, 4)
        b = VectorSimulator(module, 4)
        inputs = [
            p.name for p in module.input_ports if p.name != "clk"
        ]
        rng = random.Random(3)
        for _ in range(30):
            for name in inputs:
                value = rng.getrandbits(1)
                a.broadcast(name, value)
                for lane in range(4):
                    b.poke_lane(lane, name, value)
            a.settle()
            b.settle()
            for lane in range(4):
                for port in module.output_ports:
                    assert a.peek_lane(lane, port.name) == b.peek_lane(
                        lane, port.name
                    )
            a.step()
            b.step()


class TestShiftregLaneROM:
    """The lane-indexed activation ROM wrapper: one module for a whole
    batch, each lane replaying its own plan."""

    @staticmethod
    def _full(prefix, pattern, horizon):
        bits = list(prefix)
        while len(bits) < horizon:
            bits.extend(pattern)
        return bits[:horizon]

    def _random_plan(self, rng, period):
        """A valid plan: the cyclic pattern fires exactly one period
        per loop (validation requires a whole number of loops), with
        random idle padding and a random one-shot prefix."""
        pattern = [True] * period + [False] * rng.randrange(0, 5)
        rng.shuffle(pattern)
        prefix = tuple(
            rng.random() < 0.5 for _ in range(rng.randrange(0, 4))
        )
        return prefix, tuple(pattern)

    def test_lane_rom_matches_scalar_shiftreg_wrappers(self):
        """Lane k of the ROM wrapper strobes exactly like a scalar
        shift-register wrapper built from lane k's plan (prefix +
        cyclic pattern, expanded to the full horizon)."""
        schedule = _reference_schedule()
        rng = random.Random(11)
        lanes, cycles = 5, 48
        plans = [
            self._random_plan(rng, schedule.period_cycles)
            for _ in range(lanes)
        ]
        lane_enables = [
            self._full(prefix, pattern, cycles)
            for prefix, pattern in plans
        ]
        vec = VectorSimulator(
            generate_shiftreg_lane_wrapper(
                schedule, lane_enables, name="srl_rom_parity"
            ),
            lanes,
        )
        scalars = []
        outputs: list[str] = []
        for k, (prefix, pattern) in enumerate(plans):
            module = generate_shiftreg_wrapper(
                schedule,
                activation=list(pattern),
                name=f"sr_rom_{k}",
                prefix=prefix,
            )
            outputs = [p.name for p in module.output_ports]
            scalars.append(CompiledSimulator(module))
        for scalar in scalars:
            scalar.poke("rst", 1)
            scalar.step()
            scalar.poke("rst", 0)
        vec.broadcast("rst", 1)
        vec.step()
        vec.broadcast("rst", 0)
        for lane in range(lanes):
            vec.poke_lane(lane, "lane_id", lane)
        for cycle in range(cycles):
            for scalar in scalars:
                scalar.settle()
            vec.settle()
            for lane, scalar in enumerate(scalars):
                for name in outputs:
                    assert vec.peek_lane(lane, name) == scalar.peek(
                        name
                    ), f"cycle {cycle}, lane {lane}, signal {name!r}"
            for scalar in scalars:
                scalar.step()
            vec.step()

    def test_dead_lane_never_strobes(self):
        """A lane whose plan is None (planning failed) gets all-zero
        ROM words: it must never enable, pop or push."""
        schedule = _reference_schedule()
        rng = random.Random(3)
        cycles = 32
        prefix, pattern = self._random_plan(rng, schedule.period_cycles)
        lane_enables = [
            self._full(prefix, pattern, cycles),
            None,
        ]
        vec = VectorSimulator(
            generate_shiftreg_lane_wrapper(
                schedule, lane_enables, name="srl_rom_dead"
            ),
            2,
        )
        vec.broadcast("rst", 1)
        vec.step()
        vec.broadcast("rst", 0)
        vec.poke_lane(0, "lane_id", 0)
        vec.poke_lane(1, "lane_id", 1)
        strobes = (
            "ip_enable",
            *(f"{name}_pop" for name in schedule.inputs),
            *(f"{name}_push" for name in schedule.outputs),
        )
        live_fired = False
        for _cycle in range(cycles):
            vec.settle()
            for name in strobes:
                assert vec.peek_lane(1, name) == 0
                live_fired |= bool(vec.peek_lane(0, name))
            vec.step()
        assert live_fired  # the live lane genuinely ran

    def test_full_horizon_equals_static_activation_playback(self):
        """ROM address space: the horizon never wraps within a run of
        ``cycles`` cycles, even for single-cycle horizons."""
        schedule = _reference_schedule()
        for horizon in (1, 2, 7):
            lane_enables = [[True] * horizon]
            vec = VectorSimulator(
                generate_shiftreg_lane_wrapper(
                    schedule, lane_enables, name=f"srl_h{horizon}"
                ),
                1,
            )
            vec.broadcast("rst", 1)
            vec.step()
            vec.broadcast("rst", 0)
            vec.poke_lane(0, "lane_id", 0)
            for _ in range(horizon):
                vec.settle()
                assert vec.peek_lane(0, "ip_enable") == 1
                vec.step()


class TestEngineDispatch:
    def test_vectorized_is_registered(self):
        assert "vectorized" in ENGINES

    def test_scalar_fallback_is_compiled(self):
        """Simulator(engine='vectorized') degrades to the compiled
        scalar engine: single cases need no lane packing."""
        module = synthesize_wrapper(
            _reference_schedule(), "sp", name="vec_fallback"
        ).module
        sim = Simulator(module, engine="vectorized")
        assert isinstance(sim, CompiledSimulator)

    def test_same_shape_vectors_share_kernel(self):
        """Recompiling the same module at the same lane count reuses
        the cached kernel instead of growing the cache."""
        module = synthesize_wrapper(
            _reference_schedule(), "sp", name="vec_cache"
        ).module
        first = compile_vector_design(module, 6)
        before, _capacity = kernel_cache_info()
        second = compile_vector_design(module, 6)
        after, _capacity = kernel_cache_info()
        assert after == before
        assert second.kernel is first.kernel
