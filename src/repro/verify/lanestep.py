"""Array-of-cases stepper: the lane batch's behavioural side in NumPy.

The lane-batched vectorized engine (:mod:`repro.verify.vectorize`)
shares one compiled RTL kernel across W same-shape cases, but its
original drive loop still stepped W Python systems object-by-object —
ports, relay stations, sources, sinks and pearls each cost a Python
call per lane per cycle, and PR 9's telemetry showed that harness
dominating the ``simulate`` span while the SWAR kernels idled.

This module lowers that behavioural side into structure-of-arrays
NumPy state: one ``(W,)`` (or ``(W, depth)``) array per structural
element, shared across every lane of the chunk, driven by one
Python-level pass per cycle for *all* lanes.  Source jitter schedules
and sink stall patterns become precomputed ``(W, cycles)`` masks, the
wrapper handshakes become packed integer words installed with one
whole-slot poke (:meth:`VectorSimulator.poke_control_packed`), and the
MixPearl accumulator hash runs as vectorized ``int64`` arithmetic.

Fidelity contract: the demuxed per-lane results are **byte-identical**
to the per-lane object driver.  Anything the stepper cannot reproduce
exactly — a monkeypatched :class:`MixPearl`, instrumented systems,
non-MixPearl pearls, a strobe/script divergence, a pop on an empty
FIFO, a push on a full one (each of which the scalar driver turns
into a per-lane error record with exact text) — makes it *bail*: the
attempt is abandoned with every lane's Python objects untouched, and
the caller re-runs the chunk on the retained object driver, which
reproduces the scalar byte stream including error text.  The NumPy
dependency is optional: without it :func:`drive_lanes` reports
unavailable and the object driver runs as before.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

try:  # optional accelerator: the object driver remains the fallback
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via availability flag
    _np = None

from .cases import MixPearl

__all__ = ["HAVE_NUMPY", "drive_lanes"]

HAVE_NUMPY = _np is not None

#: The pristine pearl hook, captured at import: if a test (or user
#: extension) monkeypatches ``MixPearl.on_sync``, the vectorized hash
#: below would silently bypass the patch, so the stepper bails.
_PRISTINE_ON_SYNC = MixPearl.on_sync

_MIX = 0x9E3779B9
_MASK = 0xFFFFFFFF
_VOID = -1  # token sentinel: real tokens are non-negative ints
_MAX_TOKEN = 1 << 62


class _Bail(Exception):
    """Internal: abandon the NumPy attempt, fall back to objects."""


def _pack_words(words: "Any", nbytes: int) -> int:
    """(W,) int64 words -> one packed int, lane k at byte k*nbytes."""
    lanes = len(words)
    raw = (
        words.astype("<u8")
        .view(_np.uint8)
        .reshape(lanes, 8)[:, :nbytes]
        .tobytes()
    )
    return int.from_bytes(raw, "little")


def _unpack_words(packed: int, nbytes: int, lanes: int) -> "Any":
    """One packed int -> (W,) int64 words, lane k at byte k*nbytes."""
    raw = packed.to_bytes(lanes * nbytes, "little")
    buf = _np.zeros((lanes, 8), _np.uint8)
    buf[:, :nbytes] = _np.frombuffer(raw, _np.uint8).reshape(
        lanes, nbytes
    )
    return buf.view("<u8").ravel().astype(_np.int64)


def _tile(pattern: Sequence[bool], cycles: int) -> "Any":
    return _np.resize(_np.asarray(list(pattern), bool), cycles)


class _Wires:
    """All link data/stop wires of the batch, keyed by link name."""

    def __init__(self, names: Sequence[str], lanes: int) -> None:
        self.index = {name: k for k, name in enumerate(names)}
        self.data = _np.full((len(names), lanes), _VOID, _np.int64)
        self.stop = _np.zeros((len(names), lanes), bool)


class _InPortSoA:
    """One structural input port across all lanes."""

    def __init__(self, ports, wires: _Wires, lanes: int) -> None:
        first = next(p for p in ports if p is not None)
        self.depth = first.depth
        self.link = wires.index[first.link.name]
        self.values = _np.zeros((lanes, self.depth), _np.int64)
        self.fl = _np.zeros(lanes, _np.int64)
        self.hd = _np.zeros(lanes, _np.int64)
        self.pp = _np.zeros(lanes, _np.int64)
        self.arrived = _np.full(lanes, _VOID, _np.int64)
        for lane, port in enumerate(ports):
            if port is None:
                continue
            if port.depth != self.depth or port.link.name != first.link.name:
                raise _Bail("input port structure differs across lanes")
            initial = list(port._fifo)
            for slot, value in enumerate(initial):
                self.values[lane, slot] = _checked_token(value)
            self.fl[lane] = len(initial)

    def produce(self, wires: _Wires) -> None:
        wires.stop[self.link] = self.fl >= self.depth

    def consume(self, wires: _Wires, live) -> None:
        incoming = wires.data[self.link]
        accept = live & (self.fl < self.depth) & (incoming != _VOID)
        self.arrived = _np.where(accept, incoming, _VOID)

    def pop(self, lane_idx):
        """Head values for ``lane_idx`` lanes; marks them popped."""
        if (self.fl[lane_idx] - self.pp[lane_idx] <= 0).any():
            raise _Bail("pop on empty input port")
        vals = self.values[lane_idx, self.hd[lane_idx]]
        self.pp[lane_idx] += 1
        return vals

    def commit(self) -> None:
        adv = self.pp
        self.hd = (self.hd + adv) % self.depth
        self.fl -= adv
        self.pp = _np.zeros_like(self.pp)
        lane_idx = _np.nonzero(self.arrived != _VOID)[0]
        if len(lane_idx):
            slot = (self.hd[lane_idx] + self.fl[lane_idx]) % self.depth
            self.values[lane_idx, slot] = self.arrived[lane_idx]
            self.fl[lane_idx] += 1
            self.arrived[lane_idx] = _VOID


class _OutPortSoA:
    """One structural output port across all lanes."""

    def __init__(self, ports, wires: _Wires, lanes: int) -> None:
        first = next(p for p in ports if p is not None)
        self.depth = first.depth
        self.link = wires.index[first.link.name]
        self.values = _np.zeros((lanes, self.depth), _np.int64)
        self.fl = _np.zeros(lanes, _np.int64)
        self.hd = _np.zeros(lanes, _np.int64)
        self.pushed_val = _np.zeros(lanes, _np.int64)
        self.pushed = _np.zeros(lanes, _np.int64)
        self.sent = _np.zeros(lanes, bool)
        self._all = _np.arange(lanes)
        for lane, port in enumerate(ports):
            if port is None:
                continue
            if port.depth != self.depth or port.link.name != first.link.name:
                raise _Bail("output port structure differs across lanes")
            if port._fifo or port._pushed:
                raise _Bail("output port not empty at start")

    def produce(self, wires: _Wires) -> None:
        vals = self.values[self._all, self.hd]
        wires.data[self.link] = _np.where(self.fl > 0, vals, _VOID)

    def consume(self, wires: _Wires, live) -> None:
        stop = wires.stop[self.link]
        self.sent = live & (self.fl > 0) & ~stop

    def push(self, lane_idx, vals) -> None:
        if (
            self.fl[lane_idx] + self.pushed[lane_idx] >= self.depth
        ).any():
            raise _Bail("push on full output port")
        self.pushed_val[lane_idx] = vals
        self.pushed[lane_idx] = 1

    def commit(self) -> None:
        adv = self.sent.astype(_np.int64)
        self.hd = (self.hd + adv) % self.depth
        self.fl -= adv
        lane_idx = _np.nonzero(self.pushed)[0]
        if len(lane_idx):
            slot = (self.hd[lane_idx] + self.fl[lane_idx]) % self.depth
            self.values[lane_idx, slot] = self.pushed_val[lane_idx]
            self.fl[lane_idx] += 1
            self.pushed[lane_idx] = 0


class _RelaySoA:
    """One structural relay station across all lanes."""

    def __init__(self, stations, wires: _Wires, lanes: int) -> None:
        first = next(s for s in stations if s is not None)
        self.up = wires.index[first.upstream.name]
        self.down = wires.index[first.downstream.name]
        self.buf = _np.zeros((lanes, 2), _np.int64)
        self.occ = _np.zeros(lanes, _np.int64)
        self.hd = _np.zeros(lanes, _np.int64)
        self.max_occ = _np.zeros(lanes, _np.int64)
        self.popping = _np.zeros(lanes, bool)
        self.arr_val = _np.full(lanes, _VOID, _np.int64)
        self._all = _np.arange(lanes)
        for station in stations:
            if station is None:
                continue
            if (
                station.upstream.name != first.upstream.name
                or station.downstream.name != first.downstream.name
            ):
                raise _Bail("relay structure differs across lanes")
            if station._buffer:
                raise _Bail("relay station not empty at start")

    def produce(self, wires: _Wires) -> None:
        vals = self.buf[self._all, self.hd]
        wires.data[self.down] = _np.where(self.occ > 0, vals, _VOID)
        wires.stop[self.up] = self.occ >= 2

    def consume(self, wires: _Wires, live) -> None:
        down_stop = wires.stop[self.down]
        up_data = wires.data[self.up]
        self.popping = live & (self.occ > 0) & ~down_stop
        arriving = live & (up_data != _VOID) & (self.occ < 2)
        self.arr_val = _np.where(arriving, up_data, _VOID)
        next_occ = (
            self.occ - self.popping + arriving.astype(_np.int64)
        )
        self.max_occ = _np.where(
            live, _np.maximum(self.max_occ, next_occ), self.max_occ
        )

    def commit(self) -> None:
        adv = self.popping.astype(_np.int64)
        self.hd = (self.hd + adv) % 2
        self.occ -= adv
        lane_idx = _np.nonzero(self.arr_val != _VOID)[0]
        if len(lane_idx):
            slot = (self.hd[lane_idx] + self.occ[lane_idx]) % 2
            self.buf[lane_idx, slot] = self.arr_val[lane_idx]
            self.occ[lane_idx] += 1
            self.arr_val[lane_idx] = _VOID


class _SourceSoA:
    """One structural source across all lanes.

    Token streams and gap patterns vary per lane (jitter is lane
    data, not shape); gaps are materialized up front into a
    ``(W, cycles)`` availability mask, tokens reduce to a per-lane
    ``(base, count)`` pair.
    """

    def __init__(
        self, entries, wires: _Wires, lanes: int, cycles: int
    ) -> None:
        # entries: (Source block, topology SourceSpec) per lane.
        first_block, _ = next(e for e in entries if e is not None)
        self.link = wires.index[first_block.link.name]
        lane_tokens: list[tuple[int, int]] = [(0, 0)] * lanes
        self.avail = _np.zeros((lanes, cycles), bool)
        for lane, entry in enumerate(entries):
            if entry is None:
                continue
            block, spec = entry
            if block.link.name != first_block.link.name:
                raise _Bail("source structure differs across lanes")
            # The stream is range(base, base + n_tokens) of plain
            # ints, so one bounds check covers every token and the
            # pending value is just ``base + sent`` — no value matrix.
            # A source sends at most one token per cycle, so anything
            # past ``cycles`` can never be observed and a stream at
            # least that long never starves; truncating keeps the
            # bookkeeping O(1) in ``n_tokens``.
            count = min(spec.n_tokens, cycles)
            base = spec.base
            if type(base) is not int or not (
                0 <= base and base + count <= _MAX_TOKEN
            ):
                raise _Bail(
                    f"token stream {base!r}+{count} outside the "
                    "int64 lane range"
                )
            lane_tokens[lane] = (base, count)
            self.avail[lane] = _tile(block._gaps, cycles)
        self.base = _np.array(
            [b for b, _c in lane_tokens], _np.int64
        )
        self.n = _np.array([c for _b, c in lane_tokens], _np.int64)
        self.st = _np.zeros(lanes, _np.int64)
        self.sent = _np.zeros(lanes, bool)

    def produce(self, wires: _Wires, cycle: int) -> None:
        offer = self.avail[:, cycle] & (self.st < self.n)
        wires.data[self.link] = _np.where(
            offer, self.base + self.st, _VOID
        )

    def consume(self, wires: _Wires, live) -> None:
        self.sent = (
            live
            & (wires.data[self.link] != _VOID)
            & ~wires.stop[self.link]
        )

    def commit(self) -> None:
        self.st += self.sent


class _SinkSoA:
    """One structural sink across all lanes."""

    def __init__(
        self, sinks, wires: _Wires, lanes: int, cycles: int
    ) -> None:
        first = next(s for s in sinks if s is not None)
        self.link = wires.index[first.link.name]
        self.accepting = _np.zeros((lanes, cycles), bool)
        for lane, sink in enumerate(sinks):
            if sink is None:
                continue
            if sink.link.name != first.link.name:
                raise _Bail("sink structure differs across lanes")
            if sink._limit is not None:
                raise _Bail("sink token limits are not vectorized")
            if sink.received:
                raise _Bail("sink not empty at start")
            self.accepting[lane] = _tile(sink._accepts, cycles)
        # Per-cycle capture: slot ``cycle`` holds the token taken that
        # cycle or _VOID; the writeback compresses each lane's row in
        # arrival order.  One where() per cycle beats a nonzero +
        # fancy scatter on every tick.
        self.received = _np.full((lanes, cycles), _VOID, _np.int64)

    def produce(self, wires: _Wires, cycle: int) -> None:
        wires.stop[self.link] = ~self.accepting[:, cycle]

    def consume(self, wires: _Wires, live, cycle: int) -> None:
        value = wires.data[self.link]
        taken = live & (value != _VOID) & self.accepting[:, cycle]
        self.received[:, cycle] = _np.where(taken, value, _VOID)

    def commit(self) -> None:
        pass

    def stream(self, lane: int) -> list:
        row = self.received[lane]
        return row[row != _VOID].tolist()


class _NodeSoA:
    """One process node: script tables, pearl accumulators, the shared
    vector simulator, and the node's ports."""

    def __init__(
        self,
        name: str,
        shells,
        sim,
        wires: _Wires,
        lanes: int,
        cycles: int,
        trace: bool,
    ) -> None:
        self.name = name
        self.sim = sim
        first = next(s for s in shells if s is not None)
        if sim.stride % 8 or sim.stride > 64:
            raise _Bail("lane stride outside the packed-word bridge")
        self.nbytes = sim.stride // 8
        schedule = first.pearl.schedule
        self.n_in = len(schedule.inputs)
        self.n_out = len(schedule.outputs)
        script = first._script
        for shell in shells:
            if shell is None:
                continue
            if type(shell.pearl) is not MixPearl:
                raise _Bail("non-MixPearl pearl")
            # Lane batches share one script list per node; identity
            # short-circuits the elementwise dataclass compare.
            if shell._script is not script and shell._script != script:
                raise _Bail("wrapper script differs across lanes")
        self.S = len(script)
        self.in_tab = _np.array(
            [e.in_mask for e in script], _np.int64
        )
        self.out_tab = _np.array(
            [e.out_mask for e in script], _np.int64
        )
        self.run_tab = _np.array([e.run for e in script], _np.int64)
        self.sync_tab = _np.array(
            [e.kind == "sync" for e in script], bool
        )
        self.point_tab = _np.array(
            [e.point_index for e in script], _np.int64
        )
        # Output-bit ranks: for sync entry s and schedule output j,
        # the XOR salt index MixPearl uses for that port — its rank in
        # sorted(point.outputs) — or 0 when the entry doesn't push it.
        self.rank_tab = _np.zeros(
            (self.S, max(self.n_out, 1)), _np.int64
        )
        for s, entry in enumerate(script):
            if entry.kind != "sync":
                continue
            point = schedule.points[entry.point_index]
            expected = set(
                schedule.outputs_from_mask(entry.out_mask)
            )
            if expected != set(point.outputs):
                raise _Bail("script/point output sets diverge")
            popped = {
                schedule.inputs[b]
                for b in range(self.n_in)
                if entry.in_mask >> b & 1
            }
            point_inputs = (
                set(point.inputs) if entry.kind == "sync" else set()
            )
            if entry.kind == "sync" and popped != point_inputs:
                raise _Bail("script/point input sets diverge")
            ranks = {
                port: rank
                for rank, port in enumerate(sorted(point.outputs))
            }
            for j, port in enumerate(schedule.outputs):
                self.rank_tab[s, j] = ranks.get(port, 0)
        # Pop processing in sorted-name order reproduces the pearl's
        # sorted(popped) fold for every entry's port subset.
        self.in_sorted = sorted(
            range(self.n_in), key=lambda b: schedule.inputs[b]
        )
        self.in_mask_all = (1 << self.n_in) - 1
        self.push_shift = 1 + self.n_in
        self.acc = _np.full(
            lanes, MixPearl._initial_acc(name), _np.int64
        )
        self.script_pos = _np.zeros(lanes, _np.int64)
        self.run_left = _np.zeros(lanes, _np.int64)
        self.periods = _np.zeros(lanes, _np.int64)
        self.cw = _np.zeros(lanes, _np.int64)
        self.trace = (
            _np.zeros((lanes, cycles), bool) if trace else None
        )
        self.in_ports: list[_InPortSoA] = []
        self.out_ports: list[_OutPortSoA] = []

    def poke(self, live) -> None:
        bits = _np.zeros_like(self.cw)
        for pos, port in enumerate(self.in_ports):
            bits |= (port.fl > 0).astype(_np.int64) << pos
        for j, port in enumerate(self.out_ports):
            bits |= (
                (port.fl < port.depth).astype(_np.int64)
                << (self.n_in + j)
            )
        self.cw = _np.where(live, bits, self.cw)
        self.sim.poke_control_packed(
            _pack_words(self.cw, self.nbytes)
        )

    def decide(self, cycle: int, live, any_enabled) -> None:
        status = _unpack_words(
            self.sim.peek_status_packed(), self.nbytes, len(live)
        )
        enable = (status & 1) != 0
        pops = (status >> 1) & self.in_mask_all
        pushes = status >> self.push_shift
        strobed = (pops != 0) | (pushes != 0)
        firing = live & enable & (self.run_left == 0)
        running = live & enable & (self.run_left > 0)
        exp_in = self.in_tab[self.script_pos]
        exp_out = self.out_tab[self.script_pos]
        # One fused infidelity sweep: idle or free-running lanes must
        # not strobe, firing lanes must strobe the scripted masks.
        bad = (
            ((live & ~enable) | running) & strobed
        ) | (firing & ((pops != exp_in) | (pushes != exp_out)))
        if bad.any():
            if (live & ~enable & strobed).any():
                raise _Bail("strobes while ip_enable low")
            if (running & strobed).any():
                raise _Bail(
                    "strobes during an expected free-run cycle"
                )
            raise _Bail("RTL strobes diverge from the script")
        sync = firing & self.sync_tab[self.script_pos]
        if sync.any():
            for bit in self.in_sorted:
                popping = sync & (((exp_in >> bit) & 1) != 0)
                lane_idx = _np.nonzero(popping)[0]
                if not len(lane_idx):
                    continue
                vals = self.in_ports[bit].pop(lane_idx)
                self.acc[lane_idx] = (
                    self.acc[lane_idx] * 1000003
                    + (vals & _MASK)
                    + _MIX
                ) & _MASK
            self.acc = _np.where(
                sync,
                (
                    self.acc * 1000003
                    + self.point_tab[self.script_pos]
                    + 1
                )
                & _MASK,
                self.acc,
            )
            for j in range(self.n_out):
                pushing = sync & (((exp_out >> j) & 1) != 0)
                lane_idx = _np.nonzero(pushing)[0]
                if not len(lane_idx):
                    continue
                ranks = self.rank_tab[self.script_pos[lane_idx], j]
                vals = (self.acc[lane_idx] ^ (ranks * _MIX)) & _MASK
                self.out_ports[j].push(lane_idx, vals)
        self.run_left = _np.where(
            running, self.run_left - 1, self.run_left
        )
        next_run = self.run_tab[self.script_pos]
        pos1 = self.script_pos + 1
        wrapped = pos1 >= self.S
        self.periods += (firing & wrapped).astype(_np.int64)
        self.run_left = _np.where(firing, next_run, self.run_left)
        self.script_pos = _np.where(
            firing, _np.where(wrapped, 0, pos1), self.script_pos
        )
        enabled = live & enable
        if self.trace is not None:
            self.trace[:, cycle] = enabled
        any_enabled |= enabled


def _checked_token(value: Any) -> int:
    if type(value) is not int or not 0 <= value < _MAX_TOKEN:
        raise _Bail(f"token {value!r} outside the int64 lane range")
    return value


def _structure_signature(record) -> tuple:
    system = record.system
    return (
        tuple(
            (type(block).__name__, block.name)
            for block in system.blocks
        ),
        tuple(link.name for link in system.links),
    )


def drive_lanes(
    records: Sequence[Any],
    sims: "dict[str, Any]",
    cycles: int,
    window: int | None,
    trace: bool,
) -> float | None:
    """Drive one built lane batch with the NumPy stepper.

    ``records`` are :class:`repro.verify.vectorize._LaneRecord`\\ s
    whose systems are freshly built (never stepped); ``sims`` maps
    process name to the batch's shared
    :class:`~repro.rtl.compile_sim.VectorSimulator`\\ s, already
    reset.  On success the records' Python objects are updated with
    the harvested results (sink streams, enable traces, periods,
    relay peaks, executed/deadlocked) and the kernel time in seconds
    is returned.  On *any* infidelity the attempt bails: ``None`` is
    returned, every record object is untouched (the simulators have
    been stepped — reset them), and the caller runs the object
    driver.
    """
    if _np is None or MixPearl.on_sync is not _PRISTINE_ON_SYNC:
        return None
    lanes = len(records)
    alive = [record for record in records if not record.done]
    if not alive:
        return 0.0
    try:
        return _drive(records, sims, lanes, cycles, window, trace)
    except _Bail:
        return None


def _drive(
    records, sims, lanes, cycles, window, trace
) -> float:
    reference = next(r for r in records if not r.done)
    signature = _structure_signature(reference)
    for record in records:
        if record.done:
            continue
        if record.system.instruments:
            raise _Bail("instrumented system")
        if _structure_signature(record) != signature:
            raise _Bail("system structure differs across lanes")

    def column(getter):
        return [
            None if record.done else getter(record)
            for record in records
        ]

    wires = _Wires(
        [link.name for link in reference.system.links], lanes
    )
    nodes: list[_NodeSoA] = []
    in_ports: list[_InPortSoA] = []
    out_ports: list[_OutPortSoA] = []
    for name, shell in reference.shells.items():
        node = _NodeSoA(
            name,
            column(lambda r: r.shells[name]),
            sims[name],
            wires,
            lanes,
            cycles,
            trace,
        )
        schedule = shell.pearl.schedule
        for port_name in schedule.inputs:
            soa = _InPortSoA(
                column(lambda r: r.shells[name].in_ports[port_name]),
                wires,
                lanes,
            )
            node.in_ports.append(soa)
            in_ports.append(soa)
        for port_name in schedule.outputs:
            soa = _OutPortSoA(
                column(lambda r: r.shells[name].out_ports[port_name]),
                wires,
                lanes,
            )
            node.out_ports.append(soa)
            out_ports.append(soa)
        nodes.append(node)
    relays = [
        _RelaySoA(
            column(lambda r: r.system.relay_stations[k]),
            wires,
            lanes,
        )
        for k in range(len(reference.system.relay_stations))
    ]
    source_specs = {
        spec.name: spec for spec in reference.case.topology.sources
    }
    sources = []
    for source_name in reference.system.sources:
        spec_name = source_name

        def source_entry(record, _name=spec_name):
            block = record.system.sources[_name]
            spec = {
                s.name: s for s in record.case.topology.sources
            }[_name]
            return block, spec

        if spec_name not in source_specs:
            raise _Bail("source missing from topology")
        sources.append(
            _SourceSoA(column(source_entry), wires, lanes, cycles)
        )
    sinks = [
        _SinkSoA(
            column(lambda r: r.system.sinks[sink_name]),
            wires,
            lanes,
            cycles,
        )
        for sink_name in reference.system.sinks
    ]

    live = _np.array([not record.done for record in records])
    executed = _np.zeros(lanes, _np.int64)
    quiet = _np.zeros(lanes, _np.int64)
    deadlocked = _np.zeros(lanes, bool)
    kernel_s = 0.0
    sim_list = list(sims.values())
    perf = time.perf_counter

    for cycle in range(cycles):
        if not live.any():
            break
        for source in sources:
            source.produce(wires, cycle)
        for port in in_ports:
            port.produce(wires)
        for port in out_ports:
            port.produce(wires)
        for relay in relays:
            relay.produce(wires)
        for sink in sinks:
            sink.produce(wires, cycle)
        for port in in_ports:
            port.consume(wires, live)
        for port in out_ports:
            port.consume(wires, live)
        for relay in relays:
            relay.consume(wires, live)
        for source in sources:
            source.consume(wires, live)
        for sink in sinks:
            sink.consume(wires, live, cycle)
        for node in nodes:
            node.poke(live)
        started = perf()
        for sim in sim_list:
            sim.settle()
        kernel_s += perf() - started
        any_enabled = _np.zeros(lanes, bool)
        for node in nodes:
            node.decide(cycle, live, any_enabled)
        started = perf()
        for sim in sim_list:
            sim.step()
        kernel_s += perf() - started
        for port in in_ports:
            port.commit()
        for port in out_ports:
            port.commit()
        for relay in relays:
            relay.commit()
        for source in sources:
            source.commit()
        executed += live
        if window is not None:
            quiet = _np.where(live & any_enabled, 0, quiet + 1)
            newly = live & (quiet >= window)
            if newly.any():
                deadlocked |= newly
                live &= ~newly

    # Success: write the harvested results back into the per-lane
    # objects so _LaneRecord.harvest() works unchanged.
    for lane, record in enumerate(records):
        if record.done:
            continue
        record.executed = int(executed[lane])
        record.deadlocked = bool(deadlocked[lane])
        record.done = True
        span = record.executed
        for node in nodes:
            shell = record.shells[node.name]
            shell.periods_completed = int(node.periods[lane])
            if trace and node.trace is not None:
                shell.trace_enable = node.trace[lane, :span].tolist()
        for k, relay in enumerate(relays):
            record.system.relay_stations[k].max_occupancy = int(
                relay.max_occ[lane]
            )
        for soa, sink_name in zip(sinks, record.sinks):
            record.sinks[sink_name].received = soa.stream(lane)
    return kernel_s
