"""Synthesizable RTL for the LIS fabric itself: relay stations.

The wrappers are only half the hardware story — the methodology also
ships relay stations on every segmented wire.  This generator emits
the capacity-2 relay station as Verilog, bit-for-bit matching the
behavioural :class:`~repro.lis.relay_station.RelayStation`:

* downstream face: ``out_data`` / ``out_void`` (head token, if any);
* upstream face: ``stop_up`` asserted exactly when both slots are full;
* a transfer is accepted when ``in_void`` is low and the buffer has
  room; the head is released when the downstream ``stop_down`` is low.

The area result worth knowing (and benchmarked in the scaling tests):
one relay station costs ~``2*W`` flip-flops + a few LUTs of occupancy
logic — which is why Casu & Macchiarulo wanted to replace them with
single flip-flops, and why the paper keeps wrappers off the critical
path instead.
"""

from __future__ import annotations

from ...rtl.ast import Const, mux
from ...rtl.module import Module


def generate_relay_station(
    width: int = 8, name: str = "relay_station"
) -> Module:
    """Build the 2-slot relay station for ``width``-bit payloads."""
    if width < 1:
        raise ValueError("payload width must be >= 1")
    m = Module(name)
    clk = m.add_clock()
    rst = m.input("rst")
    in_data = m.input("in_data", width)
    in_void = m.input("in_void")
    stop_down = m.input("stop_down")
    out_data = m.output("out_data", width)
    out_void = m.output("out_void")
    stop_up = m.output("stop_up")

    buf0 = m.wire("buf0", width)  # head slot
    buf1 = m.wire("buf1", width)  # spill slot
    occ = m.wire("occ", 2)  # 0, 1 or 2 tokens

    # Downstream face: present the head whenever occupied.
    m.assign(out_data, buf0)
    m.assign(out_void, occ.eq(0))
    # Upstream face: stop exactly when full (capacity-2 invariant).
    m.assign(stop_up, occ.eq(2))

    pop = m.wire("pop")
    m.assign(pop, occ.ne(0) & ~stop_down)
    push = m.wire("push")
    m.assign(push, ~in_void & ~occ.eq(2))

    # occ' = occ - pop + push
    occ_after_pop = m.wire("occ_after_pop", 2)
    m.assign(occ_after_pop, mux(pop, occ - Const(1, 2), occ))
    occ_next = m.wire("occ_next", 2)
    m.assign(
        occ_next,
        mux(push, occ_after_pop + Const(1, 2), occ_after_pop),
    )
    m.register(occ, occ_next, reset=rst, reset_value=0)

    # Head slot: advances on pop (spill shifts down); fills directly
    # when a push lands in an empty station (or one emptied this cycle).
    head_fill = m.wire("head_fill")
    m.assign(head_fill, push & occ_after_pop.eq(0))
    buf0_next = mux(head_fill, in_data, mux(pop, buf1, buf0))
    m.register(buf0, buf0_next, reset=rst, reset_value=0)

    # Spill slot: written when a push lands while one token remains.
    spill_fill = m.wire("spill_fill")
    m.assign(spill_fill, push & occ_after_pop.eq(1))
    m.register(buf1, mux(spill_fill, in_data, buf1), reset=rst,
               reset_value=0)
    return m
