"""Top-level API surface + randomized end-to-end fuzzing.

The fuzz tests tie the whole reproduction together: generator-produced
schedules are compiled, turned into RTL, and co-simulated inside full
LIS systems against the behavioural wrappers under jittery stimuli —
any divergence anywhere in the stack fails here.
"""

from __future__ import annotations

import random

import pytest

import repro
from repro.core.compiler import CompilerOptions, compile_schedule
from repro.core.equivalence import RTLShell, Stimulus, co_simulate
from repro.core.rtlgen import generate_fsm_wrapper, generate_sp_wrapper
from repro.core.wrappers import FSMWrapper, SPWrapper
from repro.lis.pearl import FunctionPearl
from repro.lis.stream import bernoulli_gaps
from repro.sched.generate import random_schedule


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_docstring_example_runs(self):
        from repro import IOSchedule, SyncPoint, synthesize_wrapper

        schedule = IOSchedule(
            ["a"], ["y"],
            [SyncPoint({"a"}, set(), run=3), SyncPoint(set(), {"y"})],
        )
        result = synthesize_wrapper(schedule, style="sp")
        assert result.report.slices >= 1

    def test_subpackage_all_exports(self):
        import repro.core
        import repro.ips
        import repro.lis
        import repro.rtl
        import repro.sched
        import repro.synthesis

        for module in (
            repro.core, repro.ips, repro.lis, repro.rtl,
            repro.sched, repro.synthesis,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)


def _tracking_pearl(schedule):
    """Pearl producing a deterministic digest of everything it popped
    (so output equality implies identical pop orders and values)."""
    state = {"digest": 0, "count": 0}

    def fn(index, popped):
        for name in sorted(popped):
            state["digest"] = (
                state["digest"] * 31 + hash((name, popped[name]))
            ) % 1_000_003
        state["count"] += 1
        point = schedule.points[index]
        return {
            name: (state["digest"], state["count"])
            for name in point.outputs
        }

    return FunctionPearl("fuzz", schedule, fn)


def _stimulus(schedule, seed):
    rng = random.Random(seed)
    tokens = {
        name: list(range(seed * 100, seed * 100 + 300))
        for name in schedule.inputs
    }
    gaps = {
        name: bernoulli_gaps(
            0.4 + 0.5 * rng.random(), 37 + i, seed=seed + i
        )
        for i, name in enumerate(schedule.inputs)
    }
    stalls = {
        name: bernoulli_gaps(0.7, 23 + i, seed=seed + 50 + i)
        for i, name in enumerate(schedule.outputs)
    }
    latencies = {
        name: rng.randrange(1, 4) for name in schedule.inputs
    }
    return Stimulus(
        tokens=tokens, gaps=gaps, stalls=stalls, in_latency=latencies
    )


class TestEndToEndFuzz:
    @pytest.mark.parametrize("seed", range(5))
    def test_sp_rtl_system_equivalence(self, seed):
        schedule = random_schedule(
            seed + 20, max_ports=3, max_points=5, max_run=8
        )
        # fuse=False keeps op.point_index aligned with the pearl's own
        # schedule (what the behavioural shells execute against).
        program = compile_schedule(
            schedule, CompilerOptions(fuse=False)
        )
        module = generate_sp_wrapper(program, schedule=schedule)
        result = co_simulate(
            SPWrapper(_tracking_pearl(schedule)),
            RTLShell(_tracking_pearl(schedule), module, program=program),
            _stimulus(schedule, seed),
            600,
        )
        assert result.traces_match, result.first_divergence()
        assert result.outputs_match

    @pytest.mark.parametrize("seed", range(5))
    def test_fsm_rtl_system_equivalence(self, seed):
        schedule = random_schedule(
            seed + 40, max_ports=3, max_points=5, max_run=8
        )
        module = generate_fsm_wrapper(schedule)
        result = co_simulate(
            FSMWrapper(_tracking_pearl(schedule)),
            RTLShell(_tracking_pearl(schedule), module),
            _stimulus(schedule, seed),
            600,
        )
        assert result.traces_match, result.first_divergence()
        assert result.outputs_match

    @pytest.mark.parametrize("seed", range(4))
    def test_narrow_counter_equals_wide(self, seed):
        """Splitting free runs into continuation ops must not change
        observable behaviour — full-system check."""
        schedule = random_schedule(
            seed + 60, max_ports=2, max_points=4, max_run=25
        )
        wide = SPWrapper(_tracking_pearl(schedule))
        narrow = SPWrapper(
            _tracking_pearl(schedule),
            options=CompilerOptions(run_width=2),
        )
        result = co_simulate(
            wide, narrow, _stimulus(schedule, seed), 700
        )
        assert result.outputs_match

    @pytest.mark.parametrize("seed", range(4))
    def test_sp_equals_fsm_behavioural(self, seed):
        schedule = random_schedule(
            seed + 80, max_ports=3, max_points=6, max_run=10
        )
        result = co_simulate(
            SPWrapper(_tracking_pearl(schedule)),
            FSMWrapper(_tracking_pearl(schedule)),
            _stimulus(schedule, seed),
            600,
        )
        # Same tokens; the SP's reset cycle may shift the trace by one.
        assert result.outputs_match
