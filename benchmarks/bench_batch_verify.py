"""Batch-verification engine benchmarks.

Two measurements:

* the simulator's trace-free fast path (precomputed phase lists, port
  caches, allocation-free SP stepping) against a faithful replica of
  the seed ``Simulation.step`` loop — the acceptance bar is >= 1.5x on
  the bench_throughput-style ring workload;
* end-to-end ``repro verify`` throughput in cases/second, which is
  what bounds how much topology space a CI budget can cover.

The seed replica reproduces the seed's driver loop (per-cycle block
list copy, per-block attribute dispatch, watcher sweep), its shell
dispatch (`_ports` generators, mask loops over dict lookups) and its
per-cycle ``SPAction`` allocation, running on today's port/link
internals — i.e. exactly the code paths this PR replaced.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import replace

from repro.core.processor import SPAction, SPState, SyncProcessor
from repro.core.schedule import IOSchedule, SyncPoint
from repro.core.wrappers import (
    CombinationalWrapper,
    FSMWrapper,
    SPWrapper,
)
from repro.lis.pearl import FunctionPearl
from repro.lis.simulator import Simulation
from repro.lis.system import System
from repro.sched.generate import TopologyProfile, random_topology
from repro.verify import (
    BEHAVIOURAL_STYLES,
    BatchConfig,
    BatchRunner,
    CaseOutcome,
    Divergence,
    MixPearl,
    StyleRun,
    VerifyCase,
    make_cases,
    run_case,
    topology_marked_graph,
)
from repro.verify.vectorize import run_cases_vectorized
from repro.verify.cases import _credit_tokens, relay_peak_occupancy
from repro.verify.oracles import (
    check_cycle_exact,
    check_loop_bounds,
    check_relay_peak,
    check_stream_prefixes,
    throughput_slack,
    uniform_loop_bounds,
)

from _bench_common import write_result

N_NODES = 3
CYCLES = 15000
ROUNDS = 3
REQUIRED_SPEEDUP = 1.5


# -- faithful seed replica ------------------------------------------------------


class _SeedSyncProcessor(SyncProcessor):
    """The seed's step(): allocates one SPAction per cycle."""

    def step(self, in_ready, out_ready):
        self.cycles += 1
        state = self.state
        addr = self.addr
        if state is SPState.RESET:
            self.state = SPState.READ_OP
            return SPAction(False, 0, 0, None, state, addr)
        if state is SPState.FREE_RUN:
            self.enabled_cycles += 1
            self.run_counter -= 1
            if self.run_counter == 0:
                self.state = SPState.READ_OP
            return SPAction(True, 0, 0, None, state, addr)
        op = self.program.ops[addr]
        if not self._ready(op, in_ready, out_ready):
            self.stall_cycles += 1
            return SPAction(False, 0, 0, None, state, addr)
        self.enabled_cycles += 1
        next_addr = addr + 1
        if next_addr == len(self.program.ops):
            next_addr = 0
            self.periods_completed += 1
        self.addr = next_addr
        if op.run > 0:
            self.state = SPState.FREE_RUN
            self.run_counter = op.run
            self._running_op = op
        return SPAction(True, op.in_mask, op.out_mask, op, state, addr)


class _SeedSPWrapper(SPWrapper):
    """The seed's shell dispatch: generator ports, dict-lookup masks,
    no phase flattening."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.processor = _SeedSyncProcessor(self.program)

    def _ports(self):
        yield from self.in_ports.values()
        yield from self.out_ports.values()

    def phase_parts(self):
        return [self.produce], [self.consume], [self.commit]

    def _wrapper_step(self, cycle):
        in_ready = 0
        for bit, name in enumerate(self.pearl.schedule.inputs):
            if self.in_ports[name].not_empty:
                in_ready |= 1 << bit
        out_ready = 0
        for bit, name in enumerate(self.pearl.schedule.outputs):
            if self.out_ports[name].not_full:
                out_ready |= 1 << bit
        action = self.processor.step(in_ready, out_ready)
        if not action.enable:
            self.stall_cycles += 1
            if self.trace_enable is not None:
                self.trace_enable.append(False)
            return
        if action.op is not None:
            op = action.op
            if op.is_head:
                popped = {
                    name: self.in_ports[name].pop()
                    for bit, name in enumerate(self.pearl.schedule.inputs)
                    if op.in_mask >> bit & 1
                }
                pushed = dict(
                    self.pearl.on_sync(op.point_index, popped) or {}
                )
                for name, value in sorted(pushed.items()):
                    self.out_ports[name].push(value)
                self._phase_next = 0
            else:
                self.pearl.on_run(op.point_index, op.first_phase)
                self._phase_next = op.first_phase + 1
            self._running_point = op.point_index
        else:
            self.pearl.on_run(self._running_point, self._phase_next)
            self._phase_next += 1
        self.pearl._clocked()
        self.enabled_cycles += 1
        self.periods_completed = self.processor.periods_completed
        if self.trace_enable is not None:
            self.trace_enable.append(True)


def _seed_step_loop(system, cycles):
    """The seed driver: per-cycle list copy, attribute dispatch, and an
    (empty) watcher sweep.  Validation happens outside the timed
    region, mirroring the fast path's Simulation() construction."""
    watchers = []
    cycle = 0
    for _ in range(cycles):
        blocks = system.blocks
        for block in blocks:
            block.produce(cycle)
        for block in blocks:
            block.consume(cycle)
        for block in blocks:
            block.commit()
        for watcher in watchers:
            watcher(cycle)
        cycle += 1


def _ring(wrapper_cls):
    schedule = IOSchedule(["x"], ["y"], [SyncPoint({"x"}, {"y"})])

    def make(name):
        def fn(index, popped):
            return {"y": popped["x"]}

        return FunctionPearl(name, schedule, fn)

    system = System("ring")
    shells = [
        system.add_patient(wrapper_cls(make(f"n{i}")))
        for i in range(N_NODES)
    ]
    for i in range(N_NODES):
        system.connect(
            shells[i], "y", shells[(i + 1) % N_NODES], "x",
            initial_tokens=[0] if i == N_NODES - 1 else (),
        )
    return system, shells


def _time_pair():
    """One round: (seed loop seconds, fast path seconds), on identical
    fresh ring workloads."""
    seed_system, seed_shells = _ring(_SeedSPWrapper)
    seed_system.validate()
    started = time.perf_counter()
    _seed_step_loop(seed_system, CYCLES)
    seed_elapsed = time.perf_counter() - started

    fast_system, fast_shells = _ring(SPWrapper)
    simulation = Simulation(fast_system)
    started = time.perf_counter()
    simulation.run(CYCLES)
    fast_elapsed = time.perf_counter() - started

    # Both executions must do identical work.
    assert [s.enabled_cycles for s in seed_shells] == [
        s.enabled_cycles for s in fast_shells
    ]
    return seed_elapsed, fast_elapsed


def test_fast_path_beats_seed_step_loop(benchmark):
    rows = benchmark.pedantic(
        lambda: [_time_pair() for _ in range(ROUNDS)],
        rounds=1,
        iterations=1,
    )
    best_seed = min(seed for seed, _fast in rows)
    best_fast = min(fast for _seed, fast in rows)
    speedup = best_seed / best_fast
    assert speedup >= REQUIRED_SPEEDUP, (
        f"fast path only {speedup:.2f}x over the seed step loop"
    )

    benchmark.extra_info.update(
        cycles=CYCLES,
        seed_ms=round(best_seed * 1e3, 1),
        fast_ms=round(best_fast * 1e3, 1),
        speedup=round(speedup, 2),
    )
    lines = [
        f"Trace-free simulation fast path vs seed step loop "
        f"({N_NODES}-process SP ring, {CYCLES} cycles, "
        f"best of {ROUNDS})",
        "",
        f"{'variant':>12} | {'ms/run':>8} {'cycles/s':>12}",
        "-" * 38,
        f"{'seed loop':>12} | {best_seed * 1e3:>8.1f} "
        f"{CYCLES / best_seed:>12.0f}",
        f"{'fast path':>12} | {best_fast * 1e3:>8.1f} "
        f"{CYCLES / best_fast:>12.0f}",
        "",
        f"speedup: {speedup:.2f}x (required >= {REQUIRED_SPEEDUP}x)",
    ]
    write_result("batch_verify_fastpath.txt", "\n".join(lines))


def test_batch_verify_throughput(benchmark):
    config = BatchConfig(
        cases=12,
        seed=0,
        jobs=1,
        cycles=200,
        styles=BEHAVIOURAL_STYLES,
    )

    def batch():
        return BatchRunner(config).run()

    report = benchmark.pedantic(batch, rounds=1, iterations=1)
    assert report.ok, report.summary()
    rate = len(report.outcomes) / report.duration_s

    benchmark.extra_info.update(
        cases=len(report.outcomes),
        checks=report.checks,
        cases_per_s=round(rate, 1),
    )
    lines = [
        "Batch differential verification throughput "
        f"({config.cases} topologies, {config.cycles} cycles, "
        f"styles {', '.join(config.styles)})",
        "",
        f"cases/s:      {rate:.1f}",
        f"cross-checks: {report.checks}",
        f"sink tokens:  {sum(o.sink_tokens for o in report.outcomes)}",
        "",
        "Every case simulates the same random topology once per "
        "wrapper style and cross-checks sink streams, enable traces "
        "and analytic throughput bounds.",
    ]
    write_result("batch_verify_throughput.txt", "\n".join(lines))


def test_regular_traffic_verify_throughput(benchmark):
    """Regular-traffic batches run two extra styles (behavioural and
    RTL shift-register) plus the static-activation planning pass; this
    tracks their cases/second so the oracle's widest mode stays cheap
    enough for CI smoke batches."""
    config = BatchConfig(
        cases=8,
        seed=0,
        jobs=1,
        cycles=200,
        traffic="regular",
    )

    def batch():
        return BatchRunner(config).run()

    report = benchmark.pedantic(batch, rounds=1, iterations=1)
    assert report.ok, report.summary()
    rate = len(report.outcomes) / report.duration_s

    benchmark.extra_info.update(
        cases=len(report.outcomes),
        checks=report.checks,
        cases_per_s=round(rate, 1),
        styles=len(config.styles),
    )
    lines = [
        "Regular-traffic batch verification throughput "
        f"({config.cases} topologies, {config.cycles} cycles, "
        f"{len(config.styles)} styles incl. shiftreg + rtl-shiftreg)",
        "",
        f"cases/s:      {rate:.1f}",
        f"cross-checks: {report.checks}",
        f"sink tokens:  {sum(o.sink_tokens for o in report.outcomes)}",
        "",
        "Each case plans every process's static activation from the "
        "FSM reference run, then holds both shift-register styles to "
        "the same stream/trace/throughput cross-checks.",
    ]
    write_result("batch_verify_regular.txt", "\n".join(lines))


def test_dynamic_perturbed_verify_throughput(benchmark):
    """Dynamic perturbation adds stall-plan derivation, injector
    blocks on the hot simulation loop, and (in all-styles mode) one
    run per style per variant; this tracks its cases/second so the
    `--perturb-dynamic --perturb-styles all` CI smoke stays
    predictable."""
    perturb = 2
    config = BatchConfig(
        cases=8,
        seed=0,
        jobs=1,
        cycles=200,
        styles=BEHAVIOURAL_STYLES,
        perturb=perturb,
        perturb_dynamic=True,
        perturb_styles="all",
    )

    def batch():
        return BatchRunner(config).run()

    report = benchmark.pedantic(batch, rounds=1, iterations=1)
    assert report.ok, report.summary()
    rate = len(report.outcomes) / report.duration_s

    benchmark.extra_info.update(
        cases=len(report.outcomes),
        checks=report.checks,
        cases_per_s=round(rate, 1),
        perturb=perturb,
    )
    lines = [
        "Dynamic latency-perturbation verification throughput "
        f"({config.cases} topologies, {config.cycles} cycles, "
        f"{perturb} variants/case incl. mid-run stall plans, "
        "all-styles mode)",
        "",
        f"cases/s:      {rate:.1f}",
        f"cross-checks: {report.checks}",
        f"sink tokens:  {sum(o.sink_tokens for o in report.outcomes)}",
        "",
        "Each case leads its variant rotation with a dynamic variant "
        "(seeded mid-run link/relay stalls over the unchanged "
        "topology) and runs every variant under every behavioural "
        "style, with per-variant stream, throughput, relay and "
        "cycle-exact checks.",
    ]
    write_result("batch_verify_dynamic.txt", "\n".join(lines))


# -- pre-refactor run_case replica ---------------------------------------------


def _monolith_make_shell(style, node, port_depth):
    """The pre-registry style dispatch: a hardcoded if-chain."""
    pearl = MixPearl(node.name, node.schedule)
    if style == "fsm":
        return FSMWrapper(pearl, port_depth)
    if style == "sp":
        return SPWrapper(pearl, port_depth)
    if style == "combinational":
        return CombinationalWrapper(pearl, port_depth)
    raise ValueError(f"unknown verify style {style!r}")


def _monolith_build(topology, style):
    system = System(f"{topology.name}:{style}")
    shells = {}
    for node in topology.processes:
        shell = _monolith_make_shell(style, node, topology.port_depth)
        shell.trace_enable = []
        system.add_patient(shell)
        shells[node.name] = shell
    for index, channel in enumerate(topology.channels):
        system.connect(
            shells[channel.producer], channel.out_port,
            shells[channel.consumer], channel.in_port,
            latency=channel.latency,
            initial_tokens=_credit_tokens(
                topology.seed, index, channel.tokens
            ),
        )
    for source in topology.sources:
        system.connect_source(
            source.name,
            range(source.base, source.base + source.n_tokens),
            shells[source.consumer], source.in_port,
            latency=source.latency, gaps=source.gaps,
        )
    sinks = {}
    for sink in topology.sinks:
        sinks[sink.name] = system.connect_sink(
            shells[sink.producer], sink.out_port, sink.name,
            latency=sink.latency, stalls=sink.stalls,
        )
    return system, shells, sinks


def _monolith_run_case(case):
    """A faithful replica of the pre-refactor monolithic run_case:
    if-chain style dispatch plus direct inline check calls (no
    registry lookups, no oracle-object pipeline) — the baseline the
    refactored run_case must stay within 0.9x of."""
    from fractions import Fraction

    outcome = CaseOutcome(
        index=case.index, seed=case.seed,
        topology_stats=case.topology.stats(),
    )
    runs = {}
    for style in case.styles:
        try:
            system, shells, sinks = _monolith_build(
                case.topology, style
            )
            result = Simulation(system).run(
                case.cycles, deadlock_window=case.deadlock_window
            )
            run = StyleRun(
                streams={
                    name: list(sink.received)
                    for name, sink in sinks.items()
                },
                traces={
                    name: list(shell.trace_enable or [])
                    for name, shell in shells.items()
                },
                periods=dict(result.shell_periods),
                executed=result.cycles,
                relay_peak=relay_peak_occupancy(system),
                deadlocked=result.deadlocked,
            )
        except Exception as exc:
            run = StyleRun(
                streams={}, traces={}, periods={}, executed=0,
                error=f"{type(exc).__name__}: {exc}",
            )
        runs[style] = run
        outcome.cycles_executed[style] = run.executed
        if run.error is not None:
            outcome.divergences.append(
                Divergence("exception", style, "*", run.error)
            )
    reference = next(
        (s for s in case.styles if runs[s].error is None), None
    )
    if reference is not None:
        outcome.sink_tokens = sum(
            len(stream) for stream in runs[reference].streams.values()
        )
        check_stream_prefixes(runs, reference, outcome)
        check_cycle_exact(runs, outcome)
    for style, run in runs.items():
        if run.error is None:
            check_relay_peak("relay", style, run, outcome)
    graph = topology_marked_graph(case.topology)
    outcome.checks += 1
    assert abs(
        graph.throughput_enumerated() - graph.throughput_parametric()
    ) <= Fraction(1, 10**6)
    if case.topology.uniform:
        bounds = uniform_loop_bounds(case.topology, graph)
        if bounds:
            slack = throughput_slack(case.topology)
            for style, run in runs.items():
                if run.error is None:
                    check_loop_bounds(
                        "analytic", style, bounds, slack, run, outcome
                    )
    return outcome


def test_refactored_run_case_not_slower_than_monolith(benchmark):
    """The registry/oracle-pipeline run_case must deliver at least
    0.9x the plain-batch throughput of the pre-refactor monolith
    replica on identical cases (best of 3 rounds)."""
    required_ratio = 0.9
    rounds = 3
    config = BatchConfig(
        cases=10, seed=0, jobs=1, cycles=200,
        styles=BEHAVIOURAL_STYLES,
    )
    cases = make_cases(config)

    def time_pair():
        started = time.perf_counter()
        monolith = [_monolith_run_case(case) for case in cases]
        monolith_s = time.perf_counter() - started
        started = time.perf_counter()
        refactored = [run_case(case) for case in cases]
        refactored_s = time.perf_counter() - started
        # Both must verify the same work and find nothing.
        assert all(o.ok for o in monolith)
        assert all(o.ok for o in refactored)
        assert [o.sink_tokens for o in monolith] == [
            o.sink_tokens for o in refactored
        ]
        return monolith_s, refactored_s

    rows = benchmark.pedantic(
        lambda: [time_pair() for _ in range(rounds)],
        rounds=1,
        iterations=1,
    )
    best_monolith = min(m for m, _r in rows)
    best_refactored = min(r for _m, r in rows)
    ratio = best_monolith / best_refactored
    assert ratio >= required_ratio, (
        f"registry/pipeline run_case at {ratio:.2f}x of the "
        f"monolith replica (required >= {required_ratio}x)"
    )

    benchmark.extra_info.update(
        cases=len(cases),
        monolith_ms=round(best_monolith * 1e3, 1),
        refactored_ms=round(best_refactored * 1e3, 1),
        ratio=round(ratio, 2),
    )
    lines = [
        "Registry/oracle-pipeline run_case vs pre-refactor monolith "
        f"replica ({len(cases)} behavioural cases, "
        f"{config.cycles} cycles, best of {rounds})",
        "",
        f"{'variant':>12} | {'ms/batch':>9} {'cases/s':>9}",
        "-" * 36,
        f"{'monolith':>12} | {best_monolith * 1e3:>9.1f} "
        f"{len(cases) / best_monolith:>9.1f}",
        f"{'refactored':>12} | {best_refactored * 1e3:>9.1f} "
        f"{len(cases) / best_refactored:>9.1f}",
        "",
        f"throughput ratio: {ratio:.2f}x "
        f"(required >= {required_ratio}x)",
    ]
    write_result("batch_verify_refactor_guard.txt", "\n".join(lines))


def test_perturbed_verify_throughput(benchmark):
    """Latency-perturbed batches simulate each case K extra times (one
    run per derived variant, plus per-variant marked-graph analysis);
    this tracks the metamorphic oracle's cases/second so the CI smoke
    budget for `--perturb` stays predictable."""
    perturb = 3
    config = BatchConfig(
        cases=8,
        seed=0,
        jobs=1,
        cycles=200,
        styles=BEHAVIOURAL_STYLES,
        perturb=perturb,
        perturb_floorplan=True,
    )

    def batch():
        return BatchRunner(config).run()

    report = benchmark.pedantic(batch, rounds=1, iterations=1)
    assert report.ok, report.summary()
    rate = len(report.outcomes) / report.duration_s

    benchmark.extra_info.update(
        cases=len(report.outcomes),
        checks=report.checks,
        cases_per_s=round(rate, 1),
        perturb=perturb,
    )
    lines = [
        "Latency-perturbation verification throughput "
        f"({config.cases} topologies, {config.cycles} cycles, "
        f"{perturb} variants/case incl. floorplan-driven)",
        "",
        f"cases/s:      {rate:.1f}",
        f"cross-checks: {report.checks}",
        f"sink tokens:  {sum(o.sink_tokens for o in report.outcomes)}",
        "",
        "Each case derives latency-perturbed topology variants "
        "(re-segmented channels, extra feed-forward pipelining, "
        "floorplan-planned relay counts), simulates each under the "
        "reference style and checks stream invariance, per-variant "
        "marked-graph bounds and relay occupancy.",
    ]
    write_result("batch_verify_perturb.txt", "\n".join(lines))


# -- vectorized lane-batch engine ----------------------------------------------

VEC_QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
VEC_LANES = 32 if VEC_QUICK else 64
VEC_CYCLES = 150
VEC_ROUNDS = 2 if VEC_QUICK else 3
# Quick mode halves the lane count, which halves the setup
# amortization the vectorized engine banks on — the CI smoke bar is
# correspondingly lower than the full 10x acceptance bar.
VEC_REQUIRED_SPEEDUP = 6.0 if VEC_QUICK else 10.0
VEC_STYLES = ("rtl-sp", "rtl-fsm")


def _vector_workload():
    """A same-shape behavioural-free lane batch: one wide SP schedule
    (single process, ~250 sync points), replicated across VEC_LANES
    traffic variants (shifted token values, fresh jitter gaps, fresh
    sink stalls) so every lane genuinely diverges mid-run.  This is
    the workload class the vectorized engine exists for — the scalar
    path re-synthesizes and re-elaborates the wrapper per case per
    style, the vector path does it once per batch."""
    profile = TopologyProfile(
        min_processes=1,
        max_processes=1,
        max_ports=2,
        max_points=256,
        max_run=1,
        max_latency=1,
        p_internal=0.0,
        p_feedback=0.0,
        p_uniform=0.0,
        source_tokens=8192,
    )
    base = random_topology(54, profile)
    rng = random.Random(5)

    def pattern():
        bits = tuple(rng.random() < 0.7 for _ in range(8))
        return bits if any(bits) else (True,) + bits[1:]

    cases = []
    for index in range(VEC_LANES):
        topology = replace(
            base,
            sources=tuple(
                replace(src, base=src.base + index * 64, gaps=pattern())
                for src in base.sources
            ),
            sinks=tuple(
                replace(snk, stalls=pattern()) for snk in base.sinks
            ),
        )
        cases.append(
            VerifyCase(
                index=index,
                seed=index,
                cycles=VEC_CYCLES,
                topology=topology,
                styles=VEC_STYLES,
                engine="compiled",
            )
        )
    return cases


def test_vectorized_beats_compiled_on_lane_batches(benchmark):
    """The bit-parallel vectorized engine — packed kernel plus the
    NumPy structure-of-arrays lane harness — must deliver >= 10x the
    cases/second of the scalar compiled engine on same-shape
    behavioural-free batches, while staying outcome-identical case by
    case."""
    cases = _vector_workload()
    # Warm the synthesis/elaboration/kernel caches on both paths so
    # the timed rounds measure steady-state throughput.
    run_case(cases[0])
    run_cases_vectorized(cases[:2], lanes=VEC_LANES)

    def time_pair():
        started = time.perf_counter()
        scalar = [run_case(case) for case in cases]
        scalar_s = time.perf_counter() - started
        started = time.perf_counter()
        vectorized = run_cases_vectorized(cases, lanes=VEC_LANES)
        vectorized_s = time.perf_counter() - started
        # The lane demux must be result-identical to the scalar path.
        assert vectorized == scalar
        assert all(outcome.ok for outcome in scalar)
        return scalar_s, vectorized_s

    rows = benchmark.pedantic(
        lambda: [time_pair() for _ in range(VEC_ROUNDS)],
        rounds=1,
        iterations=1,
    )
    best_scalar = min(s for s, _v in rows)
    best_vectorized = min(v for _s, v in rows)
    speedup = best_scalar / best_vectorized
    assert speedup >= VEC_REQUIRED_SPEEDUP, (
        f"vectorized engine only {speedup:.2f}x over scalar compiled "
        f"(required >= {VEC_REQUIRED_SPEEDUP}x)"
    )

    # One untimed instrumented replay to split the engine's time into
    # packed-word kernel vs lane harness — the same counters the CLI's
    # --metrics-json rollup reports.
    from repro.verify import telemetry
    from repro.verify.telemetry import TelemetrySession

    session = telemetry.activate(TelemetrySession())
    try:
        run_cases_vectorized(cases, lanes=VEC_LANES)
    finally:
        telemetry.deactivate()
    counters = session.rollup.counters
    kernel_us = counters.get("vectorize.kernel_us", 0.0)
    harness_us = counters.get("vectorize.harness_us", 0.0)
    engine_us = kernel_us + harness_us
    kernel_share = kernel_us / engine_us if engine_us else 0.0

    benchmark.extra_info.update(
        lanes=VEC_LANES,
        cycles=VEC_CYCLES,
        scalar_ms=round(best_scalar * 1e3, 1),
        vectorized_ms=round(best_vectorized * 1e3, 1),
        speedup=round(speedup, 2),
        kernel_share=round(kernel_share, 3),
    )
    lines = [
        "Vectorized lane-batch engine vs scalar compiled engine "
        f"({VEC_LANES} same-shape cases, {VEC_CYCLES} cycles, styles "
        f"{', '.join(VEC_STYLES)}, best of {VEC_ROUNDS})",
        "",
        f"{'engine':>12} | {'ms/batch':>9} {'cases/s':>9}",
        "-" * 36,
        f"{'compiled':>12} | {best_scalar * 1e3:>9.1f} "
        f"{len(cases) / best_scalar:>9.1f}",
        f"{'vectorized':>12} | {best_vectorized * 1e3:>9.1f} "
        f"{len(cases) / best_vectorized:>9.1f}",
        "",
        f"speedup: {speedup:.2f}x "
        f"(required >= {VEC_REQUIRED_SPEEDUP}x)",
        "",
        "engine time split (instrumented replay, --metrics-json "
        "counters):",
        f"  kernel  (packed settle/step)   {kernel_us / 1e3:>8.1f} ms "
        f"({kernel_share:.0%})",
        f"  harness (lane sources/sinks/"
        f"pearls) {harness_us / 1e3:>6.1f} ms "
        f"({1 - kernel_share if engine_us else 0:.0%})",
        f"  chunks: {counters.get('vectorize.numpy_chunks', 0):.0f} "
        "numpy structure-of-arrays, "
        f"{counters.get('vectorize.object_chunks', 0):.0f} "
        "object-loop fallback",
        "",
        "Each lane packs one case's RTL state into a stride-aligned "
        "bit slice of shared Python integers; one settle/step per "
        "batch cycle advances every lane, the behavioural side runs "
        "as one NumPy structure-of-arrays step over all lanes, and "
        "the wrapper is synthesized and elaborated once per batch "
        "instead of once per case per style.",
    ]
    write_result("batch_verify_vectorized.txt", "\n".join(lines))


# -- supervised-pool overhead guard --------------------------------------------


def test_supervised_pool_overhead(benchmark):
    """Supervision (pipe-per-worker channels, deadline bookkeeping,
    sentinel waits) must cost at most 10% of fault-free throughput:
    the supervised pool is required to deliver >= 0.9x the
    cases/second of a plain ``ProcessPoolExecutor.map`` fan-out on
    identical fault-free batches (best of 3 rounds)."""
    from concurrent.futures import ProcessPoolExecutor

    from repro.verify.runner import run_cases_supervised

    required_ratio = 0.9
    rounds = 3
    jobs = 2
    config = BatchConfig(
        cases=12, seed=0, jobs=jobs, cycles=200,
        styles=BEHAVIOURAL_STYLES,
    )
    cases = make_cases(config)

    def time_pair():
        started = time.perf_counter()
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            plain = list(pool.map(run_case, cases))
        plain_s = time.perf_counter() - started
        started = time.perf_counter()
        supervised = run_cases_supervised(cases, jobs=jobs, retries=0)
        supervised_s = time.perf_counter() - started
        # Identical work, identical results, nothing faulted.
        assert all(o.status == "completed" for o in supervised)
        assert [
            (o.index, o.checks, o.sink_tokens) for o in plain
        ] == [
            (o.index, o.checks, o.sink_tokens) for o in supervised
        ]
        return plain_s, supervised_s

    rows = benchmark.pedantic(
        lambda: [time_pair() for _ in range(rounds)],
        rounds=1,
        iterations=1,
    )
    best_plain = min(p for p, _s in rows)
    best_supervised = min(s for _p, s in rows)
    ratio = best_plain / best_supervised
    assert ratio >= required_ratio, (
        f"supervised pool at {ratio:.2f}x of the plain pool "
        f"(required >= {required_ratio}x)"
    )

    benchmark.extra_info.update(
        cases=len(cases),
        plain_ms=round(best_plain * 1e3, 1),
        supervised_ms=round(best_supervised * 1e3, 1),
        ratio=round(ratio, 2),
    )
    lines = [
        "Supervised worker pool vs plain ProcessPoolExecutor.map "
        f"({len(cases)} behavioural cases, {config.cycles} cycles, "
        f"jobs={jobs}, fault-free, best of {rounds})",
        "",
        f"{'variant':>12} | {'ms/batch':>9} {'cases/s':>9}",
        "-" * 36,
        f"{'plain':>12} | {best_plain * 1e3:>9.1f} "
        f"{len(cases) / best_plain:>9.1f}",
        f"{'supervised':>12} | {best_supervised * 1e3:>9.1f} "
        f"{len(cases) / best_supervised:>9.1f}",
        "",
        f"throughput ratio: {ratio:.2f}x "
        f"(required >= {required_ratio}x)",
        "",
        "Supervision buys crash isolation, per-case deadlines and "
        "retry/backoff; this guard holds its fault-free overhead "
        "under 10%.",
    ]
    write_result("batch_verify_supervised_guard.txt", "\n".join(lines))


# -- telemetry overhead guard --------------------------------------------------


def test_telemetry_overhead(benchmark, tmp_path):
    """Telemetry is liveness-only and must stay near-free: a fully
    instrumented batch (active session, rollup, JSONL event stream)
    has to deliver >= 0.95x the cases/second of the same batch with
    telemetry off (best of 3 rounds)."""
    from repro.verify import telemetry
    from repro.verify.telemetry import EventWriter, TelemetrySession

    # Quick (CI smoke) mode widens the bar like the vectorized bench
    # does: batch times on a loaded CI box jitter by far more than the
    # real probe cost, so the smoke only catches structural overhead;
    # the full run holds the 0.95x acceptance bar.
    required_ratio = 0.85 if os.environ.get(
        "REPRO_BENCH_QUICK"
    ) == "1" else 0.95
    # Rounds are interleaved off/on pairs and the guard takes the
    # median of per-pair ratios — back-to-back pairing cancels the
    # slow CPU-frequency drift a min-of-rounds would trip over.
    rounds = 5
    config = BatchConfig(
        cases=12, seed=0, jobs=1, cycles=200,
        styles=BEHAVIOURAL_STYLES,
    )
    # One untimed batch warms the synthesis/elaboration caches, so the
    # first timed round measures steady state rather than cold start.
    BatchRunner(config).run()

    def time_pair(round_index):
        started = time.perf_counter()
        plain = BatchRunner(config).run()
        plain_s = time.perf_counter() - started

        session = TelemetrySession()
        session.attach_writer(
            EventWriter(
                tmp_path / f"events{round_index}.jsonl", session.t0
            )
        )
        telemetry.activate(session)
        started = time.perf_counter()
        observed = BatchRunner(config).run()
        observed_s = time.perf_counter() - started
        telemetry.deactivate()
        session.writer.close()
        # Liveness-only: identical outcomes, and the stream observed
        # the whole batch.
        assert plain.ok and observed.ok
        assert [o.sink_tokens for o in plain.outcomes] == [
            o.sink_tokens for o in observed.outcomes
        ]
        assert session.rollup.spans["case"]["count"] == config.cases
        return plain_s, observed_s

    rows = benchmark.pedantic(
        lambda: [time_pair(i) for i in range(rounds)],
        rounds=1,
        iterations=1,
    )
    from statistics import median

    best_plain = median(p for p, _o in rows)
    best_observed = median(o for _p, o in rows)
    ratio = median(p / o for p, o in rows)
    assert ratio >= required_ratio, (
        f"telemetry-on batch at {ratio:.2f}x of telemetry-off "
        f"(required >= {required_ratio}x)"
    )

    benchmark.extra_info.update(
        cases=config.cases,
        off_ms=round(best_plain * 1e3, 1),
        on_ms=round(best_observed * 1e3, 1),
        ratio=round(ratio, 2),
    )
    lines = [
        "Telemetry-instrumented batch vs telemetry-off "
        f"({config.cases} behavioural cases, {config.cycles} cycles, "
        f"rollup + JSONL event stream, median of {rounds})",
        "",
        f"{'variant':>14} | {'ms/batch':>9} {'cases/s':>9}",
        "-" * 38,
        f"{'telemetry off':>14} | {best_plain * 1e3:>9.1f} "
        f"{config.cases / best_plain:>9.1f}",
        f"{'telemetry on':>14} | {best_observed * 1e3:>9.1f} "
        f"{config.cases / best_observed:>9.1f}",
        "",
        f"throughput ratio: {ratio:.2f}x "
        f"(required >= {required_ratio}x)",
        "",
        "Probes are single-global-check no-ops when off; when on, "
        "spans/counters feed a streaming rollup and a line-flushed "
        "JSONL event stream.",
    ]
    write_result("batch_verify_telemetry_guard.txt", "\n".join(lines))
