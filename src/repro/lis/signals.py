"""Signal plumbing for the latency-insensitive protocol.

A LIS link carries, each clock cycle:

* downstream: a payload plus a *void* flag (void = no informative token
  this cycle — Carloni's ``voidin``/``voidout``);
* upstream: a *stop* flag (backpressure — ``stopin``/``stopout``).

The cycle-accurate simulator is strictly two-phase Moore-style: every
block first *produces* its outputs from registered state, then
*consumes* its inputs to compute the next state.  Because no output
ever depends combinationally on a same-cycle input, arbitrary block
graphs (including feedback loops) simulate without fixed-point
iteration — mirroring how registered stop/void signals remove long
combinational paths in the physical methodology.
"""

from __future__ import annotations

from typing import Any


class _Void:
    """Singleton marker for 'no token this cycle'."""

    _instance: "_Void | None" = None

    def __new__(cls) -> "_Void":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "VOID"

    def __bool__(self) -> bool:
        return False


VOID = _Void()


def is_void(value: Any) -> bool:
    """True when ``value`` is the void marker (not a real token)."""
    return value is VOID


class DataWire:
    """Downstream wire: payload-or-VOID, written once per cycle by the
    producer's produce() phase."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "data") -> None:
        self.name = name
        self.value: Any = VOID

    def put(self, value: Any) -> None:
        self.value = value

    def get(self) -> Any:
        return self.value

    def __repr__(self) -> str:
        return f"DataWire({self.name!r}, {self.value!r})"


class StopWire:
    """Upstream wire: 1-bit stop, written once per cycle by the consumer's
    produce() phase."""

    __slots__ = ("name", "stop")

    def __init__(self, name: str = "stop") -> None:
        self.name = name
        self.stop = False

    def put(self, stop: bool) -> None:
        self.stop = bool(stop)

    def get(self) -> bool:
        return self.stop

    def __repr__(self) -> str:
        return f"StopWire({self.name!r}, {self.stop})"


class Link:
    """A point-to-point LIS link: one data wire + one stop wire.

    The producer writes ``data`` and reads ``stop``; the consumer does
    the opposite.  A transfer occurs in a cycle exactly when the data
    wire holds a non-void token *and* the stop wire is low; both ends
    observe the same wires, so they always agree.
    """

    __slots__ = ("name", "data", "stop")

    def __init__(self, name: str) -> None:
        self.name = name
        self.data = DataWire(f"{name}.data")
        self.stop = StopWire(f"{name}.stop")

    def transfer_fires(self) -> bool:
        return not is_void(self.data.get()) and not self.stop.get()

    def __repr__(self) -> str:
        return f"Link({self.name!r})"


class Block:
    """Base class for everything the LIS simulator schedules.

    Subclasses implement the two phases plus commit:

    * :meth:`produce` — drive all output wires from registered state;
    * :meth:`consume` — read input wires, decide next state;
    * :meth:`commit` — atomically adopt the next state.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    def produce(self, cycle: int) -> None:
        raise NotImplementedError

    def consume(self, cycle: int) -> None:
        raise NotImplementedError

    def commit(self) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Return to the power-up state."""
        raise NotImplementedError

    def phase_parts(self):
        """``(produce, consume, commit)`` callable lists for the
        simulator's flattened fast path.

        Blocks whose phases decompose into independent sub-steps (e.g.
        a shell delegating to its ports) may override this so the
        driver can call the sub-steps directly, skipping one level of
        dispatch per phase per cycle.  Produce/consume callables take
        the cycle number; commit callables take no arguments.
        """
        return [self.produce], [self.consume], [self.commit]

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
