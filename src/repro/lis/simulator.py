"""Cycle-accurate system simulator for latency-insensitive SoCs.

Executes the strict two-phase schedule of :mod:`repro.lis.signals`:
each cycle, every block's ``produce`` runs (outputs from registered
state), then every ``consume`` (inputs -> next state), then every
``commit``.  No fixed-point iteration is needed because no block has a
same-cycle input-to-output path.

The driver keeps precomputed per-phase bound-method lists (built once,
when the :class:`Simulation` is constructed) and :meth:`Simulation.run`
has a *trace-free fast path*: with no watchers attached and no deadlock
window requested, the cycle loop is a tight sweep over those lists with
no per-cycle bookkeeping at all.  Batch verification
(:mod:`repro.verify`) and the throughput benches run in that mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .system import System


@dataclass
class SimulationResult:
    """Summary of one simulation run."""

    cycles: int
    shell_enabled: dict[str, int] = field(default_factory=dict)
    shell_stalled: dict[str, int] = field(default_factory=dict)
    shell_periods: dict[str, int] = field(default_factory=dict)
    sink_tokens: dict[str, int] = field(default_factory=dict)
    deadlocked: bool = False

    def utilization(self, shell_name: str) -> float:
        """Enabled fraction for ``shell_name``.

        Raises :class:`KeyError` for names the run never saw; a run of
        zero cycles reports 0.0 for every known shell.
        """
        enabled = self.shell_enabled[shell_name]
        if self.cycles == 0:
            return 0.0
        return enabled / self.cycles

    def throughput(self, sink_name: str) -> float:
        """Tokens per cycle delivered to ``sink_name``.

        Raises :class:`KeyError` for names the run never saw; a run of
        zero cycles reports 0.0 for every known sink.
        """
        tokens = self.sink_tokens[sink_name]
        if self.cycles == 0:
            return 0.0
        return tokens / self.cycles


class Simulation:
    """Drives a validated :class:`System`.

    The block set is frozen at construction: blocks added to the system
    afterwards are not simulated (construct a new :class:`Simulation`).
    """

    def __init__(self, system: System) -> None:
        system.validate()
        self.system = system
        self.cycle = 0
        self._watchers: list[Callable[[int], None]] = []
        self._produce: list[Callable[[int], None]] = []
        self._consume: list[Callable[[int], None]] = []
        self._commit: list[Callable[[], None]] = []
        for block in system.blocks:
            produce, consume, commit = block.phase_parts()
            self._produce.extend(produce)
            self._consume.extend(consume)
            self._commit.extend(commit)
        self._shells = list(system.shells.values())

    def add_watcher(self, fn: Callable[[int], None]) -> None:
        """``fn(cycle)`` runs after every commit (trace collection)."""
        self._watchers.append(fn)

    def step(self, cycles: int = 1) -> None:
        produce = self._produce
        consume = self._consume
        commit = self._commit
        watchers = self._watchers
        cycle = self.cycle
        try:
            for _ in range(cycles):
                for fn in produce:
                    fn(cycle)
                for fn in consume:
                    fn(cycle)
                for fn in commit:
                    fn()
                for watcher in watchers:
                    watcher(cycle)
                cycle += 1
        finally:
            self.cycle = cycle

    def run(
        self,
        cycles: int,
        deadlock_window: int | None = None,
    ) -> SimulationResult:
        """Run for ``cycles`` cycles; optionally stop early if no shell
        fires for ``deadlock_window`` consecutive cycles."""
        deadlocked = False
        executed = 0
        if deadlock_window is None and not self._watchers:
            # Trace-free fast path: nothing to observe per cycle.
            produce = self._produce
            consume = self._consume
            commit = self._commit
            cycle = self.cycle
            try:
                for _ in range(cycles):
                    for fn in produce:
                        fn(cycle)
                    for fn in consume:
                        fn(cycle)
                    for fn in commit:
                        fn()
                    cycle += 1
                    executed += 1
            finally:
                self.cycle = cycle
        else:
            quiet = 0
            # enabled_cycles counters only ever grow, so the sum moves
            # exactly when some shell made progress.
            last_total = sum(
                shell.enabled_cycles for shell in self._shells
            )
            for _ in range(cycles):
                self.step()
                executed += 1
                if deadlock_window is not None:
                    total = sum(
                        shell.enabled_cycles for shell in self._shells
                    )
                    quiet = 0 if total != last_total else quiet + 1
                    last_total = total
                    if quiet >= deadlock_window:
                        deadlocked = True
                        break
        return SimulationResult(
            cycles=executed,
            shell_enabled={
                name: shell.enabled_cycles
                for name, shell in self.system.shells.items()
            },
            shell_stalled={
                name: shell.stall_cycles
                for name, shell in self.system.shells.items()
            },
            shell_periods={
                name: shell.periods_completed
                for name, shell in self.system.shells.items()
            },
            sink_tokens={
                name: len(sink.received)
                for name, sink in self.system.sinks.items()
            },
            deadlocked=deadlocked,
        )

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_cycles: int = 1_000_000,
    ) -> int:
        """Step until ``predicate()`` holds; returns cycles executed."""
        executed = 0
        while not predicate():
            if executed >= max_cycles:
                raise RuntimeError(
                    f"run_until exceeded {max_cycles} cycles "
                    f"(system {self.system.name!r} may be deadlocked)"
                )
            self.step()
            executed += 1
        return executed

    def reset(self) -> None:
        for block in self.system.blocks:
            block.reset()
        self.cycle = 0
