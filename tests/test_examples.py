"""Every example script must run clean — they are executable docs."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "OK" in result.stdout


def test_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 4
