"""Serialization: schedules as JSON, programs as memory images.

The wrapper-synthesis flow's external interfaces:

* **schedule JSON** — the hand-off format from an HLS tool (the paper's
  GAUT) or from trace extraction to wrapper synthesis;
* **memh images** — `$readmemh`-compatible dumps of the operations
  memory, for loading the SP program into simulation or an FPGA
  initialization flow;
* **export bundle** — one call writing the Verilog, the ROM image and
  the synthesis report of a wrapper into a directory.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from .operations import Operation, OperationFormat, SPProgram
from .schedule import IOSchedule, ScheduleError, SyncPoint


class IOError_(ValueError):
    """Raised for malformed serialized artifacts."""


# -- schedules ----------------------------------------------------------------


def schedule_to_dict(schedule: IOSchedule) -> dict[str, Any]:
    """JSON-ready representation of a schedule."""
    return {
        "inputs": list(schedule.inputs),
        "outputs": list(schedule.outputs),
        "points": [
            {
                "inputs": sorted(point.inputs),
                "outputs": sorted(point.outputs),
                "run": point.run,
            }
            for point in schedule.points
        ],
    }


def schedule_from_dict(data: dict[str, Any]) -> IOSchedule:
    """Inverse of :func:`schedule_to_dict`, with validation."""
    try:
        points = [
            SyncPoint(
                frozenset(p.get("inputs", [])),
                frozenset(p.get("outputs", [])),
                int(p.get("run", 0)),
            )
            for p in data["points"]
        ]
        return IOSchedule(
            list(data["inputs"]), list(data["outputs"]), points
        )
    except (KeyError, TypeError) as exc:
        raise IOError_(f"malformed schedule document: {exc}") from exc
    except ScheduleError as exc:
        raise IOError_(f"invalid schedule: {exc}") from exc


def save_schedule(schedule: IOSchedule, path: str | pathlib.Path) -> None:
    pathlib.Path(path).write_text(
        json.dumps(schedule_to_dict(schedule), indent=2) + "\n"
    )


def load_schedule(path: str | pathlib.Path) -> IOSchedule:
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise IOError_(f"not valid JSON: {path}") from exc
    return schedule_from_dict(data)


# -- programs -----------------------------------------------------------------


def program_to_memh(program: SPProgram) -> str:
    """``$readmemh``-compatible operations-memory image.

    One word per line, hex, width padded to the word width; a comment
    header documents the field layout.
    """
    fmt = program.fmt
    digits = (fmt.word_width + 3) // 4
    lines = [
        f"// SP operations memory: {len(program.ops)} words x "
        f"{fmt.word_width} bits",
        f"// word = in_mask[{fmt.n_inputs}] | out_mask[{fmt.n_outputs}]"
        f" | run[{fmt.run_width}]",
    ]
    for word in program.rom_image():
        lines.append(f"{word:0{digits}x}")
    return "\n".join(lines) + "\n"


def program_from_memh(
    text: str, fmt: OperationFormat
) -> SPProgram:
    """Parse a memh image back into a program (provenance is lost:
    every operation is a head op)."""
    ops = []
    for line in text.splitlines():
        line = line.split("//")[0].strip()
        if not line:
            continue
        try:
            word = int(line, 16)
        except ValueError as exc:
            raise IOError_(f"bad memh line {line!r}") from exc
        ops.append(Operation.decode(word, fmt))
    if not ops:
        raise IOError_("memh image contains no words")
    return SPProgram(fmt=fmt, ops=tuple(ops))


# -- export bundles --------------------------------------------------------------


def export_wrapper(result, directory: str | pathlib.Path) -> list[str]:
    """Write a :class:`~repro.core.synthesis.WrapperSynthesisResult`'s
    artifacts (Verilog, report, schedule, ROM image when present) into
    ``directory``; returns the filenames written."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []

    verilog = directory / f"{result.module.name}.v"
    verilog.write_text(result.verilog)
    written.append(verilog.name)

    report = directory / f"{result.module.name}.report.txt"
    report.write_text(
        result.report.summary()
        + "\n"
        + f"critical path: {result.report.mapping.critical_path}\n"
        + f"rom style: {result.report.mapping.rom_style}\n"
    )
    written.append(report.name)

    schedule = directory / f"{result.module.name}.schedule.json"
    save_schedule(result.schedule, schedule)
    written.append(schedule.name)

    if result.program is not None:
        memh = directory / f"{result.module.name}.ops.memh"
        memh.write_text(program_to_memh(result.program))
        written.append(memh.name)
        listing = directory / f"{result.module.name}.ops.lst"
        listing.write_text(result.program.listing() + "\n")
        written.append(listing.name)
    return written
