"""Top-level synthesis flow and Table-1 reporting."""

from __future__ import annotations

import pytest

from repro.core.synthesis import (
    SYNTH_STYLES,
    synthesize_all_styles,
    synthesize_wrapper,
)
from repro.core.schedule import IOSchedule, SyncPoint
from repro.rtl.lint import LintError
from repro.rtl.module import Module
from repro.synthesis.flow import synthesize
from repro.synthesis.report import (
    PAPER_TABLE1,
    ComparisonRow,
    format_table1,
)


class TestFlow:
    def test_flow_produces_report(self, simple_schedule):
        result = synthesize_wrapper(simple_schedule, "sp")
        assert result.report.slices >= 1
        assert result.report.fmax_mhz > 0
        assert result.program is not None
        assert "module" in result.verilog

    def test_flow_rejects_broken_module(self):
        m = Module("broken")
        m.input("a")
        m.output("y")  # undriven
        with pytest.raises(LintError):
            synthesize(m)

    def test_all_styles(self, simple_schedule):
        results = synthesize_all_styles(simple_schedule)
        assert set(results) == set(SYNTH_STYLES)
        for style, result in results.items():
            assert result.report.slices >= 1, style

    def test_unknown_style_rejected(self, simple_schedule):
        with pytest.raises(ValueError):
            synthesize_wrapper(simple_schedule, "magic")

    def test_sp_program_attached_only_for_sp(self, simple_schedule):
        fsm = synthesize_wrapper(simple_schedule, "fsm")
        assert fsm.program is None

    def test_verilog_emission_stable(self, simple_schedule):
        a = synthesize_wrapper(simple_schedule, "sp").verilog
        b = synthesize_wrapper(simple_schedule, "sp").verilog
        assert a == b

    def test_summary_mentions_triple(self, simple_schedule):
        result = synthesize_wrapper(simple_schedule, "sp")
        assert "3 / 2 / 3" in result.summary()

    def test_rom_style_forwarded(self, long_wait_schedule):
        block = synthesize_wrapper(
            long_wait_schedule, "sp", rom_style="block"
        )
        dist = synthesize_wrapper(
            long_wait_schedule, "sp", rom_style="distributed"
        )
        assert block.report.mapping.brams >= 1
        assert dist.report.mapping.brams == 0
        assert dist.report.mapping.rom_luts > 0


class TestComparisonRows:
    def test_gains(self):
        row = ComparisonRow(
            ip_name="X",
            ports=4,
            waits=100,
            run=1,
            fsm_slices=200,
            fsm_fmax=70.0,
            sp_slices=20,
            sp_fmax=105.0,
        )
        assert row.area_gain_pct == 90.0
        assert row.fmax_gain_pct == pytest.approx(50.0)

    def test_format_table(self):
        row = ComparisonRow("RS", 4, 2957, 1, 2610, 71.0, 24, 105.0)
        text = format_table1([row])
        assert "RS 4/2957/1" in text
        assert "2610" in text
        assert "24" in text
        assert "Port/wait/run" in text

    def test_paper_reference_numbers(self):
        assert PAPER_TABLE1["RS"]["fsm_slices"] == 2610
        assert PAPER_TABLE1["Viterbi"]["sp_slices"] == 24
        assert PAPER_TABLE1["RS"]["fmax_gain_pct"] == 47.0


class TestShapeReproduction:
    """Small-scale versions of the Table-1 asymmetry (fast enough for
    unit tests; the full-size run lives in benchmarks/)."""

    def _wait_schedule(self, n):
        points = [SyncPoint({"sym"}) for _ in range(n)]
        points.append(SyncPoint(frozenset(), {"out"}, run=1))
        return IOSchedule(["sym"], ["out"], points)

    def test_sp_beats_onehot_fsm_on_long_schedule(self):
        schedule = self._wait_schedule(300)
        sp = synthesize_wrapper(schedule, "sp")
        fsm = synthesize_wrapper(schedule, "fsm-onehot")
        assert sp.report.slices < fsm.report.slices / 5
        assert sp.report.fmax_mhz >= fsm.report.fmax_mhz * 0.9

    def test_fsm_area_grows_sp_does_not(self):
        short = self._wait_schedule(50)
        long = self._wait_schedule(400)
        sp_short = synthesize_wrapper(short, "sp").report.slices
        sp_long = synthesize_wrapper(long, "sp").report.slices
        fsm_short = synthesize_wrapper(short, "fsm-onehot").report.slices
        fsm_long = synthesize_wrapper(long, "fsm-onehot").report.slices
        assert fsm_long > fsm_short * 4
        assert sp_long <= sp_short + 3

    def test_comb_smallest_but_limited(self, simple_schedule):
        results = synthesize_all_styles(simple_schedule)
        comb = results["combinational"].report.slices
        assert comb <= min(
            results["sp"].report.slices,
            results["fsm"].report.slices,
        )
