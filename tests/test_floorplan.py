"""Wire-length-driven relay planning."""

from __future__ import annotations

import pytest

from repro.core.wrappers import SPWrapper
from repro.ips.fir import FIRPearl, fir_reference
from repro.lis.floorplan import (
    Floorplan,
    FloorplanError,
    WireModel,
    plan_channel,
    plan_channels,
    plan_system,
)
from repro.lis.simulator import Simulation
from repro.lis.system import System


class TestWireModel:
    def test_flight_time_linear(self):
        model = WireModel(delay_ns_per_mm=0.5, fanout_penalty_ns=0.1)
        assert model.flight_time_ns(2.0) == pytest.approx(1.1)

    def test_zero_distance_costs_penalty_only(self):
        model = WireModel()
        assert model.flight_time_ns(0.0) == pytest.approx(
            model.fanout_penalty_ns
        )

    def test_negative_distance_rejected(self):
        with pytest.raises(FloorplanError):
            WireModel().flight_time_ns(-1.0)


class TestFloorplan:
    def test_manhattan_distance(self):
        plan = Floorplan()
        plan.place("a", 0, 0)
        plan.place("b", 3, 4)
        assert plan.distance_mm("a", "b") == 7.0

    def test_duplicate_placement_rejected(self):
        plan = Floorplan()
        plan.place("a", 0, 0)
        with pytest.raises(FloorplanError):
            plan.place("a", 1, 1)

    def test_unplaced_block_rejected(self):
        plan = Floorplan()
        plan.place("a", 0, 0)
        with pytest.raises(FloorplanError):
            plan.distance_mm("a", "ghost")

    def test_bounding_box(self):
        plan = Floorplan()
        plan.place("a", 1, 2)
        plan.place("b", 5, 9)
        assert plan.bounding_box_mm() == (4.0, 7.0)

    def test_empty_bounding_box(self):
        assert Floorplan().bounding_box_mm() == (0.0, 0.0)


class TestChannelPlanning:
    def _plan(self, distance, period, **model_kw):
        plan = Floorplan()
        plan.place("p", 0, 0)
        plan.place("c", distance, 0)
        return plan_channel(
            plan, "p", "c", period, WireModel(**model_kw)
        )

    def test_short_wire_needs_no_relays(self):
        channel = self._plan(1.0, period=5.0)
        assert channel.latency == 1
        assert channel.relay_stations == 0

    def test_long_wire_segmented(self):
        channel = self._plan(
            30.0, period=2.0, delay_ns_per_mm=0.3
        )
        # flight = 9.15 ns, period 2 ns -> 5 segments -> 4 relays
        assert channel.latency == 5
        assert channel.relay_stations == 4

    def test_faster_clock_needs_more_relays(self):
        slow = self._plan(20.0, period=10.0)
        fast = self._plan(20.0, period=2.0)
        assert fast.relay_stations > slow.relay_stations

    def test_bad_period_rejected(self):
        with pytest.raises(FloorplanError):
            self._plan(1.0, period=0.0)

    def test_plan_channels_batch(self):
        plan = Floorplan()
        for name, x in (("a", 0), ("b", 10), ("c", 40)):
            plan.place(name, x, 0)
        channels = plan_channels(
            plan, [("a", "b"), ("b", "c")], clock_period_ns=2.0
        )
        assert len(channels) == 2
        assert channels[1].relay_stations > channels[0].relay_stations


class TestSystemPlanning:
    def test_plan_at_wrapper_fmax(self):
        plan = Floorplan()
        plan.place("a", 0, 0)
        plan.place("b", 25, 0)
        system_plan = plan_system(
            plan, [("a", "b")], wrapper_fmax_mhz=200.0
        )
        assert system_plan.clock_period_ns == pytest.approx(5.0)
        assert system_plan.latency_for("a", "b") >= 2

    def test_unknown_channel_rejected(self):
        plan = Floorplan()
        plan.place("a", 0, 0)
        plan.place("b", 1, 0)
        system_plan = plan_system(plan, [("a", "b")], 100.0)
        with pytest.raises(FloorplanError):
            system_plan.latency_for("b", "a")

    def test_bad_fmax_rejected(self):
        with pytest.raises(FloorplanError):
            plan_system(Floorplan(), [], 0.0)

    def test_planned_latencies_run_correctly(self):
        """End-to-end: build a System with floorplan-derived latencies;
        the stream must be exact (latency insensitivity)."""
        floor = Floorplan()
        floor.place("fir1", 0, 0)
        floor.place("fir2", 18, 6)
        system_plan = plan_system(
            floor, [("fir1", "fir2")], wrapper_fmax_mhz=250.0
        )
        latency = system_plan.latency_for("fir1", "fir2")
        assert latency >= 2  # long wire at a fast clock

        system = System("planned")
        s1 = system.add_patient(SPWrapper(FIRPearl("fir1", (1, 2))))
        s2 = system.add_patient(SPWrapper(FIRPearl("fir2", (3, 1))))
        system.connect(s1, "y_out", s2, "x_in", latency=latency)
        samples = list(range(25))
        system.connect_source("src", samples, s1, "x_in")
        sink = system.connect_sink(s2, "y_out", "snk")
        Simulation(system).run(800)
        expected = fir_reference(
            fir_reference(samples, (1, 2)), (3, 1)
        )
        assert sink.received == expected
