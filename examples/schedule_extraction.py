#!/usr/bin/env python3
"""Wrapper synthesis without an HLS schedule: extract it from a trace.

Singh & Theobald's FSM (and therefore the paper's SP) needs an I/O
schedule that "proves the IP communication behaviour is cyclic and not
data-dependent".  When the IP comes from an HLS tool such as GAUT the
schedule is a by-product; for a hand-written IP it is not.  This
example shows the recovery path the library provides:

1. free-run the IP once and record its per-cycle port events;
2. detect the period and rebuild the IOSchedule;
3. compile + synthesize the SP wrapper from the recovered schedule;
4. verify by running the wrapped IP against the original behaviour.

Run:  python examples/schedule_extraction.py
"""

from repro import Simulation, SPWrapper, System, synthesize_wrapper
from repro.core import compile_schedule, program_summary
from repro.ips import FIRPearl, fir_reference
from repro.sched import extract_schedule, trace_pearl

# --- 1. The "undocumented" IP: a 6-tap FIR someone hand-wrote ----------
COEFFS = (2, 7, 1, 8, 2, 8)
mystery_ip = FIRPearl("mystery", COEFFS)

# Pretend we do NOT know mystery_ip.schedule: record a port-event trace
# by free-running the IP (three periods' worth of cycles).
trace = trace_pearl(mystery_ip, cycles=24)
print("observed port events (first period):")
for cycle, event in enumerate(trace[:8]):
    ins = ",".join(sorted(event.inputs)) or "-"
    outs = ",".join(sorted(event.outputs)) or "-"
    print(f"  cycle {cycle}: pop[{ins}] push[{outs}]")

# --- 2. Period detection + schedule reconstruction ---------------------
recovered = extract_schedule(
    trace, inputs=["x_in"], outputs=["y_out"]
)
print(f"\nrecovered schedule: {recovered.stats()} (ports/wait/run)")
assert recovered == mystery_ip.schedule.normalized()
print("matches the IP's true schedule: yes")

# --- 3. Wrapper synthesis from the recovered schedule ------------------
program = compile_schedule(recovered)
print("\ncompiled SP program:", program_summary(program))
result = synthesize_wrapper(recovered, style="sp")
print("synthesis:", result.report.summary())

# --- 4. Verification: wrapped IP == reference filter -------------------
samples = list(range(40))
pearl = FIRPearl("verified", COEFFS)
system = System("extraction_demo")
shell = system.add_patient(SPWrapper(pearl))
system.connect_source(
    "src", samples, shell, "x_in", gaps=[True, True, False]
)
sink = system.connect_sink(shell, "y_out", "snk")
Simulation(system).run(1200)
assert sink.received == fir_reference(samples, COEFFS)
print(
    f"\nwrapped IP produced {len(sink.received)} samples, all matching "
    "the reference filter"
)
print("\nschedule extraction example OK")
