"""Structural RTL container: modules, ports, registers, ROMs, instances.

A :class:`Module` is a flat list of named signals plus four kinds of
behaviour, chosen so that the same structure can be (1) emitted as
synthesizable Verilog-2001, (2) simulated cycle-accurately and (3)
bit-blasted into a gate netlist for the area/timing model:

* ``Assign`` — continuous combinational assignment ``target = expr``;
* ``Register`` — synchronous update with optional enable and synchronous
  reset (one ``always @(posedge clk)`` block per register on emission);
* ``Rom`` — asynchronous read-only memory ``data = contents[addr]``, the
  paper's operations memory (maps to LUT/block RAM on FPGAs);
* ``Instance`` — a submodule instantiation with port connections.

The single-clock restriction matches the paper's setting: latency
insensitive design assumes one synchronous clock domain per pearl.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .ast import Const, Expr, Signal, WidthError


class RtlError(ValueError):
    """Raised for structurally invalid module constructions."""


@dataclass(frozen=True)
class Port:
    """A module port: direction is ``"input"`` or ``"output"``."""

    signal: Signal
    direction: str

    def __post_init__(self) -> None:
        if self.direction not in ("input", "output"):
            raise RtlError(f"bad port direction {self.direction!r}")

    @property
    def name(self) -> str:
        return self.signal.name

    @property
    def width(self) -> int:
        return self.signal.width


@dataclass(frozen=True)
class Assign:
    """Continuous assignment ``target = expr``."""

    target: Signal
    expr: Expr

    def __post_init__(self) -> None:
        if self.target.width != self.expr.width:
            raise WidthError(
                f"assign to {self.target.name!r}: width {self.target.width} "
                f"!= expression width {self.expr.width}"
            )


@dataclass(frozen=True)
class Register:
    """Synchronous register.

    On each rising clock edge: if ``reset`` (when present) is asserted the
    register loads ``reset_value``; otherwise if ``enable`` (when present)
    is deasserted it holds; otherwise it loads ``next``.
    """

    target: Signal
    next: Expr
    enable: Expr | None = None
    reset: Expr | None = None
    reset_value: int = 0

    def __post_init__(self) -> None:
        if self.target.width != self.next.width:
            raise WidthError(
                f"register {self.target.name!r}: width {self.target.width} "
                f"!= next-value width {self.next.width}"
            )
        if self.enable is not None and self.enable.width != 1:
            raise WidthError("register enable must be 1 bit wide")
        if self.reset is not None and self.reset.width != 1:
            raise WidthError("register reset must be 1 bit wide")
        if not 0 <= self.reset_value < (1 << self.target.width):
            raise WidthError(
                f"reset value {self.reset_value} does not fit in "
                f"{self.target.width} bits"
            )


@dataclass(frozen=True)
class Rom:
    """Asynchronous ROM: ``data`` continuously reads ``contents[addr]``.

    Reads beyond ``len(contents)`` return 0 (the emitter pads the image to
    the full 2**addr_width so simulation and synthesis agree).
    """

    name: str
    addr: Expr
    data: Signal
    contents: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.contents:
            raise RtlError(f"ROM {self.name!r} must not be empty")
        depth_limit = 1 << self.addr.width
        if len(self.contents) > depth_limit:
            raise RtlError(
                f"ROM {self.name!r}: {len(self.contents)} words exceed "
                f"address space of {depth_limit}"
            )
        limit = 1 << self.data.width
        for index, word in enumerate(self.contents):
            if not 0 <= word < limit:
                raise WidthError(
                    f"ROM {self.name!r} word {index} = {word} does not fit "
                    f"in {self.data.width} bits"
                )

    @property
    def depth(self) -> int:
        return len(self.contents)

    def read(self, address: int) -> int:
        if 0 <= address < len(self.contents):
            return self.contents[address]
        return 0


@dataclass(frozen=True)
class Instance:
    """Submodule instantiation.

    ``connections`` maps the child's port names to parent signals.  Every
    child port must be connected; widths must match exactly.
    """

    module: "Module"
    name: str
    connections: Mapping[str, Signal]

    def __post_init__(self) -> None:
        for port in self.module.ports:
            if port.name not in self.connections:
                raise RtlError(
                    f"instance {self.name!r}: port {port.name!r} unconnected"
                )
            actual = self.connections[port.name]
            if actual.width != port.width:
                raise WidthError(
                    f"instance {self.name!r}: port {port.name!r} width "
                    f"{port.width} connected to {actual.width}-bit signal"
                )
        for name in self.connections:
            if self.module.find_port(name) is None:
                raise RtlError(
                    f"instance {self.name!r}: module {self.module.name!r} "
                    f"has no port {name!r}"
                )


class Module:
    """A synthesizable single-clock RTL module."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.ports: list[Port] = []
        self.wires: list[Signal] = []
        self.assigns: list[Assign] = []
        self.registers: list[Register] = []
        self.roms: list[Rom] = []
        self.instances: list[Instance] = []
        self.clock: Signal | None = None
        self._names: set[str] = set()

    # -- construction ------------------------------------------------------

    def _claim_name(self, name: str) -> None:
        if name in self._names:
            raise RtlError(f"duplicate signal name {name!r} in {self.name!r}")
        self._names.add(name)

    def add_clock(self, name: str = "clk") -> Signal:
        """Declare the module clock as an input port."""
        if self.clock is not None:
            raise RtlError(f"module {self.name!r} already has a clock")
        self.clock = self.input(name)
        return self.clock

    def input(self, name: str, width: int = 1) -> Signal:
        self._claim_name(name)
        signal = Signal(name, width)
        self.ports.append(Port(signal, "input"))
        return signal

    def output(self, name: str, width: int = 1) -> Signal:
        self._claim_name(name)
        signal = Signal(name, width)
        self.ports.append(Port(signal, "output"))
        return signal

    def wire(self, name: str, width: int = 1) -> Signal:
        self._claim_name(name)
        signal = Signal(name, width)
        self.wires.append(signal)
        return signal

    def assign(self, target: Signal, expr: Expr | int) -> Assign:
        if isinstance(expr, int):
            expr = Const(expr, target.width)
        assign = Assign(target, expr)
        self.assigns.append(assign)
        return assign

    def register(
        self,
        target: Signal,
        next_value: Expr | int,
        enable: Expr | None = None,
        reset: Expr | None = None,
        reset_value: int = 0,
    ) -> Register:
        if isinstance(next_value, int):
            next_value = Const(next_value, target.width)
        reg = Register(target, next_value, enable, reset, reset_value)
        self.registers.append(reg)
        return reg

    def rom(
        self,
        name: str,
        addr: Expr,
        data: Signal,
        contents: Iterable[int],
    ) -> Rom:
        rom = Rom(name, addr, data, tuple(contents))
        self.roms.append(rom)
        return rom

    def instantiate(
        self,
        module: "Module",
        name: str,
        connections: Mapping[str, Signal],
    ) -> Instance:
        instance = Instance(module, name, dict(connections))
        self.instances.append(instance)
        return instance

    # -- queries -------------------------------------------------------------

    def find_port(self, name: str) -> Port | None:
        for port in self.ports:
            if port.name == name:
                return port
        return None

    @property
    def input_ports(self) -> list[Port]:
        return [port for port in self.ports if port.direction == "input"]

    @property
    def output_ports(self) -> list[Port]:
        return [port for port in self.ports if port.direction == "output"]

    def all_signals(self) -> list[Signal]:
        return [port.signal for port in self.ports] + list(self.wires)

    def driven_signals(self) -> list[Signal]:
        """Signals driven inside this module (assign/register/ROM targets,
        plus output ports of child instances)."""
        driven = [assign.target for assign in self.assigns]
        driven += [reg.target for reg in self.registers]
        driven += [rom.data for rom in self.roms]
        for instance in self.instances:
            for port in instance.module.output_ports:
                driven.append(instance.connections[port.name])
        return driven

    def __repr__(self) -> str:
        return (
            f"Module({self.name!r}, ports={len(self.ports)}, "
            f"assigns={len(self.assigns)}, registers={len(self.registers)}, "
            f"roms={len(self.roms)}, instances={len(self.instances)})"
        )


@dataclass
class Design:
    """A module hierarchy rooted at ``top`` (children discovered via
    instances, deduplicated by identity)."""

    top: Module
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.top.name

    def modules(self) -> list[Module]:
        """All modules in the hierarchy, children before parents."""
        seen: dict[int, Module] = {}
        order: list[Module] = []

        def visit(module: Module) -> None:
            if id(module) in seen:
                return
            seen[id(module)] = module
            for instance in module.instances:
                visit(instance.module)
            order.append(module)

        visit(self.top)
        return order
