"""Schedule analytics: complexity triples, wrapper cost predictors.

The paper's §5 claim is a statement about asymptotics: SP logic
complexity is Θ(ports), FSM complexity is Θ(period length).  This
module computes the analytic predictors the scaling benches compare
against the mapped areas.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.compiler import auto_run_width
from ..core.schedule import IOSchedule
from ..rtl.ast import clog2


@dataclass(frozen=True)
class ComplexityModel:
    """Closed-form size predictors for one schedule."""

    ports: int
    waits: int
    run_total: int
    period_cycles: int
    sp_rom_bits: int
    sp_datapath_bits: int
    fsm_state_bits_binary: int
    fsm_state_bits_onehot: int

    @property
    def sp_word_width(self) -> int:
        return self.sp_rom_bits // max(1, self.waits_effective)

    @property
    def waits_effective(self) -> int:
        return max(1, self.waits)


def analyze(schedule: IOSchedule) -> ComplexityModel:
    """Compute the analytic complexity profile of ``schedule``."""
    stats = schedule.stats()
    run_width = auto_run_width(schedule)
    word = schedule.n_ports + run_width
    n_ops = len(schedule.points)
    addr_width = clog2(max(2, n_ops))
    # SP datapath register bits: 2 state + read-counter + run-counter.
    datapath = 2 + addr_width + run_width
    return ComplexityModel(
        ports=stats.ports,
        waits=stats.waits,
        run_total=stats.run,
        period_cycles=stats.period_cycles,
        sp_rom_bits=n_ops * word,
        sp_datapath_bits=datapath,
        fsm_state_bits_binary=clog2(max(2, stats.period_cycles)),
        fsm_state_bits_onehot=stats.period_cycles,
    )


def table1_triple(schedule: IOSchedule) -> str:
    """The ``ports/wait/run`` string of the paper's Table 1."""
    return str(schedule.stats())


def sp_area_is_schedule_independent(
    schedules: list[IOSchedule],
) -> bool:
    """Analytic form of the paper's §5 claim: for a fixed port count and
    counter widths, the SP datapath size is constant across schedules."""
    profiles = {
        (
            analyze(s).ports,
            auto_run_width(s),
            analyze(s).sp_datapath_bits,
        )
        for s in schedules
    }
    ports_counters = {(p, r) for p, r, _d in profiles}
    return len(ports_counters) == len(profiles)
