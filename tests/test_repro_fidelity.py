"""Reproducer-replay fidelity, end to end.

A failing batch shrinks its case, writes a reproducer via the real
``--out`` path, and the real ``--repro`` path must replay it under the
*recorded* seed and engine and reproduce the divergence.  Covered:
the {random, regular} x {plain, perturb-dynamic} matrix with engines
spread across it, engine-pinned failures that vanish under the wrong
engine, the replay parameter precedence rules (explicit ``--engine``
wins; absent keys resolve like ``BatchConfig``; missing style lists
follow the topology's traffic regime), and the hard shrink-attempt
budget shared between both shrinking passes.
"""

from __future__ import annotations

import functools
import json
from dataclasses import replace

import pytest

from repro.cli import main
from repro.rtl.simulator import InterpSimulator, resolve_engine
from repro.sched.generate import (
    PROFILE_PRESETS,
    TopologyVariant,
    derive_variants,
    random_topology,
    topology_to_dict,
)
from repro.verify import (
    CaseOutcome,
    Divergence,
    VerifyCase,
    run_case,
    shrink_case,
    styles_for_traffic,
)


def _base_topology(traffic):
    profile = (
        PROFILE_PRESETS["regular"] if traffic == "regular" else None
    )
    for seed in range(100):
        topology = (
            random_topology(seed)
            if profile is None
            else random_topology(seed, profile)
        )
        if topology.sources and topology.sinks:
            yield topology


def _install_interp_corruption(monkeypatch):
    """Corrupt the interp engine only: ``ip_enable`` reads as low from
    cycle 10 on.  RTL-in-the-loop styles diverge from the behavioural
    reference *only* when the case runs under ``engine="interp"`` —
    an engine-pinned failure."""
    original = InterpSimulator.peek

    def corrupted(self, name):
        if name == "ip_enable" and self.cycle >= 10:
            return 0
        return original(self, name)

    monkeypatch.setattr(InterpSimulator, "peek", corrupted)


def _tampered_variant(topology):
    """A structurally legal variant whose first source stream is
    shifted by one token value — the injected fault the metamorphic
    stream check must catch (same idiom as test_verify_perturb)."""
    variant = derive_variants(topology, 1, seed=topology.seed)[0]
    sources = list(variant.topology.sources)
    sources[0] = replace(sources[0], base=sources[0].base + 1)
    return TopologyVariant(
        kind=variant.kind,
        index=variant.index,
        topology=replace(variant.topology, sources=tuple(sources)),
    )


@functools.lru_cache(maxsize=None)
def _perturbed_failing_case(traffic):
    """A seeded case whose pinned tampered variant provably reaches a
    sink, alongside a genuine dynamic (mid-run stall plan) variant."""
    for topology in _base_topology(traffic):
        bad = _tampered_variant(topology)
        dynamic = derive_variants(
            topology, 1, seed=topology.seed + 7, dynamic=True
        )
        case = VerifyCase(
            index=0,
            seed=topology.seed,
            cycles=150,
            topology=topology,
            styles=("fsm",),
            variants=(bad,) + dynamic,
            perturb=2,
            perturb_dynamic=True,
        )
        outcome = run_case(case)
        if any(
            d.check == "perturb-streams" for d in outcome.divergences
        ):
            return case
    raise AssertionError(
        f"no {traffic} seed propagates the injected fault"
    )


def _plain_failing_case(traffic, monkeypatch):
    """A case that diverges without perturbation, via the interp-only
    corruption: fails under engine='interp', passes under 'compiled'."""
    _install_interp_corruption(monkeypatch)
    for topology in _base_topology(traffic):
        case = VerifyCase(
            index=0,
            seed=topology.seed,
            cycles=120,
            topology=topology,
            styles=("fsm", "rtl-fsm"),
            engine="interp",
        )
        if not run_case(case).ok:
            return case
    raise AssertionError(
        f"no {traffic} seed diverges under the corrupted interp"
    )


def _spy_replay(monkeypatch, recorded):
    """Route the CLI --repro path's run_case through a recorder."""

    def spy(case, runs=None):
        outcome = run_case(case, runs=runs)
        recorded["case"] = case
        recorded["outcome"] = outcome
        return outcome

    monkeypatch.setattr("repro.verify.run_case", spy)


class TestWriteReplayMatrix:
    """verify --out writes seed+engine; verify --repro honors them and
    reproduces the divergence kinds."""

    @pytest.mark.parametrize(
        "traffic,mode,engine",
        [
            ("random", "plain", "interp"),
            ("random", "perturb-dynamic", "vectorized"),
            ("regular", "plain", "interp"),
            ("regular", "perturb-dynamic", "compiled"),
        ],
    )
    def test_write_then_replay_reproduces(
        self, tmp_path, monkeypatch, capsys, traffic, mode, engine
    ):
        if mode == "plain":
            case = _plain_failing_case(traffic, monkeypatch)
        else:
            case = _perturbed_failing_case(traffic)
        assert not run_case(replace(case, engine=engine)).ok

        import repro.verify.runner as runner_mod

        monkeypatch.setattr(
            runner_mod,
            "make_cases",
            lambda config: [replace(case, engine=config.engine)],
        )
        code = main([
            "verify", "--cases", "1", "--out", str(tmp_path),
            "--engine", engine, "--cycles", str(case.cycles),
        ])
        capsys.readouterr()
        assert code == 1
        path = tmp_path / "case0_minimal.json"
        data = json.loads(path.read_text())
        assert data["engine"] == engine
        assert data["seed"] == case.seed
        if mode == "perturb-dynamic":
            assert data["perturb_dynamic"] is True
            assert data["variants"]

        recorded = {}
        _spy_replay(monkeypatch, recorded)
        code = main(["verify", "--repro", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "DIVERGED" in out
        # The replay ran under the recorded parameters, not the CLI
        # defaults — the old behaviour was seed 0 + default engine.
        assert recorded["case"].engine == engine
        assert recorded["case"].seed == case.seed
        replay_kinds = {
            d.check for d in recorded["outcome"].divergences
        }
        assert replay_kinds
        if mode == "perturb-dynamic":
            # The injected fault is a corrupted variant stream; the
            # replay must rediscover exactly that kind of divergence.
            assert "perturb-streams" in replay_kinds

    def test_engine_pinned_failure_vanishes_off_engine(
        self, tmp_path, monkeypatch, capsys
    ):
        """The same reproducer passes when replayed with an explicit
        --engine compiled: the failure genuinely needed the recorded
        engine, and the explicit flag wins over the recorded one."""
        case = _plain_failing_case("random", monkeypatch)

        import repro.verify.runner as runner_mod

        monkeypatch.setattr(
            runner_mod,
            "make_cases",
            lambda config: [replace(case, engine=config.engine)],
        )
        code = main([
            "verify", "--cases", "1", "--out", str(tmp_path),
            "--engine", "interp", "--cycles", str(case.cycles),
        ])
        capsys.readouterr()
        assert code == 1
        path = str(tmp_path / "case0_minimal.json")

        assert main(["verify", "--repro", path]) == 1
        capsys.readouterr()
        assert main(
            ["verify", "--repro", path, "--engine", "compiled"]
        ) == 0
        assert "no divergence" in capsys.readouterr().out


class TestReplayParameters:
    """Unit-level precedence rules of the --repro parameter handling."""

    def _replay(self, tmp_path, monkeypatch, data, extra=()):
        recorded = {}

        def fake(case, runs=None):
            recorded["case"] = case
            return CaseOutcome(index=case.index, seed=case.seed)

        monkeypatch.setattr("repro.verify.run_case", fake)
        path = tmp_path / "repro.json"
        path.write_text(json.dumps(data))
        assert main(
            ["verify", "--repro", str(path), *extra]
        ) == 0
        return recorded["case"]

    def test_recorded_engine_honored(self, tmp_path, monkeypatch):
        data = topology_to_dict(random_topology(1))
        data["engine"] = "interp"
        case = self._replay(tmp_path, monkeypatch, data)
        assert case.engine == "interp"

    def test_explicit_engine_flag_wins(self, tmp_path, monkeypatch):
        data = topology_to_dict(random_topology(1))
        data["engine"] = "interp"
        case = self._replay(
            tmp_path, monkeypatch, data,
            extra=("--engine", "vectorized"),
        )
        assert case.engine == "vectorized"

    def test_absent_engine_resolves_like_batch_config(
        self, tmp_path, monkeypatch
    ):
        data = topology_to_dict(random_topology(1))
        case = self._replay(tmp_path, monkeypatch, data)
        assert case.engine == resolve_engine(None)

    def test_recorded_seed_honored(self, tmp_path, monkeypatch):
        data = topology_to_dict(random_topology(1))
        data["seed"] = 31337
        case = self._replay(tmp_path, monkeypatch, data)
        assert case.seed == 31337

    def test_missing_styles_follow_traffic_regime(
        self, tmp_path, monkeypatch
    ):
        """A hand-written regular-traffic topology without a style
        list replays under the regular style set (shift-register
        styles included), not the random-traffic default."""
        topology = random_topology(2, PROFILE_PRESETS["regular"])
        assert topology.traffic == "regular"
        case = self._replay(
            tmp_path, monkeypatch, topology_to_dict(topology)
        )
        assert case.styles == styles_for_traffic("regular")
        assert "shiftreg" in case.styles

    def test_missing_styles_random_traffic(
        self, tmp_path, monkeypatch
    ):
        data = topology_to_dict(random_topology(1))
        case = self._replay(tmp_path, monkeypatch, data)
        assert case.styles == styles_for_traffic("random")


class TestShrinkBudget:
    """max_attempts is a hard cap on candidate *executions*, shared
    between the structural pass and the variant-pinning pass."""

    def _count_executions(self, monkeypatch):
        import repro.verify.shrink as shrink_mod

        calls = {"n": 0}

        def always_failing(case, runs=None):
            calls["n"] += 1
            return CaseOutcome(
                index=case.index,
                seed=case.seed,
                divergences=[
                    Divergence("streams", "fsm", "snk", "boom")
                ],
            )

        monkeypatch.setattr(shrink_mod, "run_case", always_failing)
        return calls

    def _pathological_case(self):
        # Enormous cycle count: the cycle-halving reduction alone
        # yields ~24 candidates, and every one of them "fails", so an
        # unbounded greedy loop would grind far past any budget.
        return VerifyCase(
            index=0,
            seed=0,
            cycles=10**9,
            topology=random_topology(0),
            styles=("fsm",),
            perturb=2,
        )

    def test_budget_is_exact_hard_cap(self, monkeypatch):
        calls = self._count_executions(monkeypatch)
        shrink_case(self._pathological_case(), max_attempts=25)
        # Exactly 25: the old accounting let the pinning pass add up
        # to 8 more attempts on top of an exhausted budget.
        assert calls["n"] == 25

    def test_exhausted_budget_still_pins_variants(self, monkeypatch):
        calls = self._count_executions(monkeypatch)
        minimal = shrink_case(
            self._pathological_case(), max_attempts=0
        )
        assert calls["n"] == 0
        # Pinning itself is free and still happens, so the reproducer
        # carries an explicit variant set even with no budget left.
        assert minimal.variants is not None

    def test_unused_budget_not_spent_on_generation(self, monkeypatch):
        """Candidates merely *generated* cost nothing: a case with no
        failing reduction stops after one sweep of executions."""
        import repro.verify.shrink as shrink_mod

        calls = {"n": 0}

        def never_failing(case, runs=None):
            calls["n"] += 1
            return CaseOutcome(index=case.index, seed=case.seed)

        monkeypatch.setattr(shrink_mod, "run_case", never_failing)
        case = VerifyCase(
            index=0, seed=0, cycles=100,
            topology=random_topology(0), styles=("fsm",),
        )
        shrink_case(case, max_attempts=1000)
        assert calls["n"] < 50
