"""FIR filter pearl — a small DSP IP for examples and ablations.

A transposed-form FIR with integer coefficients; the pearl consumes one
sample per period, spends ``taps`` free-run cycles on the MAC chain
(modelling a single-MAC folded implementation) and emits one filtered
sample — a partial-port schedule (2 ports touched at different sync
points) that the combinational wrapper over-synchronizes on.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..core.schedule import IOSchedule, SyncPoint
from ..lis.pearl import Pearl


def fir_schedule(taps: int) -> IOSchedule:
    """Per period: pop ``x_in`` then ``taps`` MAC free-run cycles, then
    push ``y_out``."""
    if taps < 1:
        raise ValueError("a FIR needs at least one tap")
    return IOSchedule(
        ["x_in"],
        ["y_out"],
        [
            SyncPoint({"x_in"}, frozenset(), run=taps),
            SyncPoint(frozenset(), {"y_out"}),
        ],
    )


class FIRPearl(Pearl):
    """Single-MAC FIR filter pearl."""

    def __init__(
        self,
        name: str = "fir",
        coefficients: Sequence[int] = (1, 2, 3, 2, 1),
    ) -> None:
        if not coefficients:
            raise ValueError("need at least one coefficient")
        self.coefficients = tuple(int(c) for c in coefficients)
        super().__init__(name, fir_schedule(len(self.coefficients)))
        self._delay_line = [0] * len(self.coefficients)
        self._accumulator = 0

    def on_sync(
        self, index: int, popped: Mapping[str, Any]
    ) -> Mapping[str, Any]:
        if index == 0:
            self._delay_line.insert(0, int(popped["x_in"]))
            self._delay_line.pop()
            self._accumulator = 0
            return {}
        return {"y_out": self._accumulator}

    def on_run(self, index: int, phase: int) -> None:
        # One MAC per free-run cycle, exactly the folded datapath.
        if phase < len(self.coefficients):
            self._accumulator += (
                self.coefficients[phase] * self._delay_line[phase]
            )

    def on_reset(self) -> None:
        super().on_reset()
        self._delay_line = [0] * len(self.coefficients)
        self._accumulator = 0


def fir_reference(
    samples: Sequence[int], coefficients: Sequence[int]
) -> list[int]:
    """Direct-form reference for checking the pearl's output."""
    outputs = []
    delay = [0] * len(coefficients)
    for sample in samples:
        delay.insert(0, int(sample))
        delay.pop()
        outputs.append(
            sum(c * d for c, d in zip(coefficients, delay))
        )
    return outputs
