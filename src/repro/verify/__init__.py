"""Batch differential verification of latency-insensitive systems.

The paper's central claim is that a synthesized synchronization-
processor wrapper is cycle-equivalent to the behavioural schedule it
was compiled from, inside *any* latency-insensitive system.  This
package exercises that claim at throughput: it draws whole random
system topologies (:func:`repro.sched.generate.random_topology`),
instantiates each one under every wrapper style — behavioural FSM/SP/
combinational shells and RTL-in-the-loop SP/FSM shells — feeds them
identical stimuli, and cross-checks:

* **token streams** — every sink's received sequence must agree across
  styles on the common prefix (the LIS functional-equivalence
  property; styles only differ in *when* tokens move);
* **cycle accuracy** — the behavioural SP and the simulated SP RTL
  (and likewise FSM vs FSM RTL) must produce identical per-cycle
  enable traces for every process;
* **analytic throughput** — the marked-graph bound of
  :mod:`repro.lis.throughput` (both implementations cross-checked)
  must upper-bound every measured process rate in the uniform regime.

The shift-register wrapper (Casu & Macchiarulo) joins the oracle in
the **regular-traffic regime** (``repro verify --traffic regular``):
there, topologies are uniform-schedule and jitter-free, and
:mod:`repro.verify.regular` plans each process's static activation —
start-up prefix plus periodic ring — from the FSM reference run, so
both the behavioural ``shiftreg`` shell and the ``rtl-shiftreg``
RTL-in-the-loop shell replay the reference schedule exactly and are
held to the same stream/trace/throughput checks.  Random-traffic
batches still exclude it: jitter violates its environment hypothesis
by design.

The **metamorphic latency-perturbation oracle**
(:mod:`repro.verify.perturb`, ``repro verify --perturb K``) finally
tests the methodology's own headline claim: for every case it derives
K latency-perturbed variants of the topology
(:func:`repro.sched.generate.derive_variants` — re-segmented channels,
extra feed-forward pipelining, optional floorplan-driven replanning
via :func:`repro.lis.floorplan.plan_channels`) and demands that sink
streams stay token-identical to the base on the common prefix, that
each variant respects *its own* marked-graph throughput bound, and
that no relay station ever exceeds its capacity-2 occupancy
invariant.

Failing cases are shrunk to minimal reproducers
(:func:`repro.verify.shrink_case`) and reported with their topology as
JSON; failing perturbations shrink further, to the minimal divergent
base-plus-variant pair.  The :class:`BatchRunner` fans cases across
``concurrent.futures`` workers with deterministic per-case seeds, so
``repro verify --cases N --seed S`` is reproducible at any job count,
and every batch carries a topology-shape coverage report
(:mod:`repro.verify.coverage`) rendered by ``repro verify --coverage``
or exported as JSON for CI trend tracking (``repro coverage-diff``
compares two such artifacts and fails on shrinking support).
"""

from .cases import (
    ALL_STYLES,
    BEHAVIOURAL_STYLES,
    DEFAULT_STYLES,
    REGULAR_STYLES,
    RTL_STYLES,
    SHIFTREG_STYLES,
    CaseOutcome,
    Divergence,
    MixPearl,
    StyleRun,
    VerifyCase,
    build_system,
    run_case,
    simulate_topology,
    styles_for_traffic,
    topology_marked_graph,
    uniform_loop_bounds,
)
from .coverage import (
    CoverageDiff,
    CoverageReport,
    diff_coverage,
    topology_features,
)
from .perturb import (
    case_variants,
    check_perturbations,
    run_variant,
)
from .regular import (
    StaticActivation,
    plan_static_activation,
    plan_topology_activations,
)
from .runner import BatchConfig, BatchReport, BatchRunner, make_cases
from .shrink import shrink_case

__all__ = [
    "ALL_STYLES",
    "BEHAVIOURAL_STYLES",
    "BatchConfig",
    "BatchReport",
    "BatchRunner",
    "CaseOutcome",
    "CoverageDiff",
    "CoverageReport",
    "DEFAULT_STYLES",
    "Divergence",
    "MixPearl",
    "REGULAR_STYLES",
    "RTL_STYLES",
    "SHIFTREG_STYLES",
    "StaticActivation",
    "StyleRun",
    "VerifyCase",
    "build_system",
    "case_variants",
    "check_perturbations",
    "diff_coverage",
    "make_cases",
    "plan_static_activation",
    "plan_topology_activations",
    "run_case",
    "run_variant",
    "shrink_case",
    "simulate_topology",
    "styles_for_traffic",
    "topology_features",
    "topology_marked_graph",
    "uniform_loop_bounds",
]
