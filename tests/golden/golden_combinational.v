module golden_combinational(clk, rst, a_not_empty, a_pop, b_not_empty, b_pop, y_not_full, y_push, status_not_full, status_push, ip_enable);
    input clk;
    input rst;
    input a_not_empty;
    output a_pop;
    input b_not_empty;
    output b_pop;
    input y_not_full;
    output y_push;
    input status_not_full;
    output status_push;
    output ip_enable;
    wire all_ready;

    assign all_ready = ((a_not_empty & b_not_empty) & (y_not_full & status_not_full));
    assign ip_enable = all_ready;
    assign a_pop = all_ready;
    assign b_pop = all_ready;
    assign y_push = all_ready;
    assign status_push = all_ready;
endmodule
