"""Regular-traffic verification mode: generation, static-activation
planning, shift-register oracle parity, and coverage reports."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.rtlgen import generate_shiftreg_wrapper
from repro.core.schedule import IOSchedule, SyncPoint
from repro.core.wrappers import ShiftRegisterWrapper
from repro.lis.pearl import FunctionPearl
from repro.lis.shell import ShellError
from repro.rtl.simulator import Simulator
from repro.sched.generate import (
    PROFILE_PRESETS,
    TopologyProfile,
    random_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.verify import (
    BatchConfig,
    BatchRunner,
    CoverageReport,
    DEFAULT_STYLES,
    REGULAR_STYLES,
    SHIFTREG_STYLES,
    VerifyCase,
    make_cases,
    plan_static_activation,
    plan_topology_activations,
    run_case,
    styles_for_traffic,
    topology_features,
)

REG = TopologyProfile(
    traffic="regular",
    min_processes=2,
    max_processes=4,
    max_ports=2,
    max_run=4,
    source_tokens=512,
)


def _regular_case(seed: int, styles=REGULAR_STYLES, cycles: int = 200):
    return VerifyCase(
        index=0,
        seed=seed,
        cycles=cycles,
        topology=random_topology(seed, REG),
        styles=tuple(styles),
    )


class TestRegularGeneration:
    @pytest.mark.parametrize("seed", range(8))
    def test_regular_topologies_are_jitter_free(self, seed):
        topology = random_topology(seed, REG)
        assert topology.traffic == "regular"
        assert topology.regular
        assert topology.uniform
        assert all(src.gaps is None for src in topology.sources)
        assert all(snk.stalls is None for snk in topology.sinks)
        assert "/reg" in topology.stats()

    @pytest.mark.parametrize("seed", range(8))
    def test_same_seed_same_topology_json(self, seed):
        first = topology_to_dict(random_topology(seed, REG))
        second = topology_to_dict(random_topology(seed, REG))
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_traffic_round_trips_through_json(self):
        topology = random_topology(1, REG)
        data = topology_to_dict(topology)
        assert data["traffic"] == "regular"
        assert topology_from_dict(data) == topology
        # Legacy reproducers without the field default to random.
        del data["traffic"]
        assert topology_from_dict(data).traffic == "random"

    def test_random_profile_unaffected(self):
        topology = random_topology(0, TopologyProfile())
        assert topology.traffic == "random"
        assert not topology.regular

    def test_bad_traffic_mode_rejected(self):
        with pytest.raises(ValueError, match="traffic"):
            TopologyProfile(traffic="bursty")

    def test_regular_preset_registered(self):
        preset = PROFILE_PRESETS["regular"]
        assert preset.traffic == "regular"
        assert preset.source_tokens >= 512


class TestStaticActivationPlan:
    def test_periodic_trace_decomposes(self):
        trace = [False] * 3 + [True, True, False] * 20
        plan = plan_static_activation(trace, period_cycles=2)
        assert plan.periodic
        assert plan.activation(len(trace)) == trace
        assert sum(plan.pattern) % 2 == 0

    def test_plan_replays_trace_exactly(self):
        # Whatever decomposition is chosen, replay must be exact.
        trace = ([False, True] * 5) + ([True, True, False] * 12)
        plan = plan_static_activation(trace, period_cycles=3)
        assert plan.activation(len(trace)) == trace

    def test_never_firing_trace_gets_silent_plan(self):
        plan = plan_static_activation([False] * 10, period_cycles=4)
        assert not plan.periodic
        assert plan.activation(10) == [False] * 10

    def test_aperiodic_trace_falls_back_to_silent_plan(self):
        # Fires only at square cycle indices: no periodic firing tail,
        # so the plan carries the transient as prefix and never fires
        # its ring — replay stays exact either way.
        trace = [i in (0, 1, 4, 9, 16) for i in range(20)]
        plan = plan_static_activation(trace, period_cycles=1)
        assert not plan.periodic
        assert plan.activation(len(trace)) == trace

    def test_horizon_without_two_repetitions_is_prefix_only(self):
        # A lone trailing stall breaks every cyclic candidate (any
        # period that matches it would need a second repetition beyond
        # the horizon), so the whole trace becomes the prefix.
        trace = [True] * 19 + [False]
        plan = plan_static_activation(trace, period_cycles=1)
        assert plan.prefix == tuple(trace)
        assert not plan.periodic
        assert plan.activation(len(trace)) == trace

    @pytest.mark.parametrize("seed", range(4))
    def test_topology_plans_replay_fsm_traces(self, seed):
        from repro.lis.simulator import Simulation
        from repro.verify import build_system

        topology = random_topology(seed, REG)
        cycles = 200
        system, shells, _ = build_system(topology, "fsm", trace=True)
        Simulation(system).run(cycles, deadlock_window=64)
        plans = plan_topology_activations(topology, cycles, 64)
        for name, shell in shells.items():
            trace = list(shell.trace_enable)
            assert plans[name].activation(len(trace)) == trace


class TestShiftRegPrefix:
    def _schedule(self):
        return IOSchedule(["x"], ["y"], [SyncPoint({"x"}, {"y"})])

    def _pearl(self, schedule):
        return FunctionPearl(
            "p", schedule, lambda idx, popped: {"y": popped["x"]}
        )

    def test_prefix_plays_once_before_pattern(self):
        schedule = self._schedule()
        shell = ShiftRegisterWrapper(
            self._pearl(schedule),
            pattern=[True],
            prefix=[False, False, True],
        )
        fires = [shell._next_fire() for _ in range(6)]
        assert fires == [False, False, True, True, True, True]

    def test_never_firing_pattern_allowed_with_prefix(self):
        schedule = self._schedule()
        shell = ShiftRegisterWrapper(
            self._pearl(schedule),
            pattern=[False],
            prefix=[True, False],
        )
        fires = [shell._next_fire() for _ in range(4)]
        assert fires == [True, False, False, False]

    def test_never_firing_without_prefix_still_rejected(self):
        schedule = self._schedule()
        with pytest.raises(ShellError):
            ShiftRegisterWrapper(self._pearl(schedule), pattern=[False])

    def test_rtl_prefix_then_ring(self):
        schedule = IOSchedule(
            ["a"], ["y"], [SyncPoint({"a"}, {"y"}, run=1)]
        )
        prefix = [False, False, True, False]
        pattern = [True, True, False]
        module = generate_shiftreg_wrapper(
            schedule, activation=pattern, prefix=prefix
        )
        sim = Simulator(module)
        sim.poke("rst", 1)
        sim.step()
        sim.poke("rst", 0)
        expected = list(prefix) + [
            pattern[i % len(pattern)] for i in range(9)
        ]
        seen = []
        pops = []
        for _ in range(len(expected)):
            sim.settle()
            seen.append(bool(sim.peek("ip_enable")))
            pops.append(bool(sim.peek("a_pop")))
            sim.step()
        assert seen == expected
        # The prefix fires one active cycle (the sync slot); the ring
        # continues the unrolled walk: run slot first, then sync...
        active_slots = [i for i, e in enumerate(seen) if e]
        sync_slots = [i for i, p in enumerate(pops) if p]
        # sync/run alternate over active cycles, starting at sync.
        assert sync_slots == active_slots[::2]


class TestShiftregOracleParity:
    @pytest.mark.parametrize("seed", range(20))
    def test_twenty_seeded_regular_topologies_agree(self, seed):
        outcome = run_case(
            _regular_case(
                seed, styles=("fsm", "sp", "shiftreg", "rtl-shiftreg")
            )
        )
        assert outcome.ok, outcome.divergences
        assert outcome.checks > 0

    @pytest.mark.parametrize("seed", (0, 7))
    def test_full_regular_style_set_agrees(self, seed):
        outcome = run_case(_regular_case(seed, cycles=300))
        assert outcome.ok, outcome.divergences
        for style in REGULAR_STYLES:
            assert outcome.cycles_executed[style] > 0

    def test_shiftreg_trace_matches_fsm_cycle_for_cycle(self):
        case = _regular_case(5, styles=("fsm", "shiftreg"))
        from repro.verify.cases import run_styles

        runs = run_styles(
            case.topology, case.styles, case.cycles,
            case.deadlock_window,
        )
        fsm, shiftreg = runs["fsm"], runs["shiftreg"]
        assert shiftreg.error is None
        assert shiftreg.traces == fsm.traces
        assert shiftreg.streams == fsm.streams


class TestTrafficConfig:
    def test_styles_resolve_by_traffic(self):
        assert styles_for_traffic("random") == DEFAULT_STYLES
        assert styles_for_traffic("regular") == REGULAR_STYLES
        for style in SHIFTREG_STYLES:
            assert style in REGULAR_STYLES

    def test_traffic_override_flips_preset(self):
        config = BatchConfig(cases=2, profile="small", traffic="regular")
        assert config.traffic_name == "regular"
        assert config.topology_profile.traffic == "regular"
        assert config.styles == REGULAR_STYLES
        cases = make_cases(config)
        assert all(c.topology.regular for c in cases)

    def test_regular_preset_implies_regular_traffic(self):
        config = BatchConfig(cases=2, profile="regular")
        assert config.traffic_name == "regular"
        assert config.styles == REGULAR_STYLES

    def test_explicit_styles_win(self):
        config = BatchConfig(
            cases=2, traffic="regular", styles=("fsm", "sp")
        )
        assert config.styles == ("fsm", "sp")

    def test_bad_traffic_rejected(self):
        with pytest.raises(ValueError, match="traffic"):
            BatchConfig(cases=1, traffic="bursty")

    def test_regular_batch_is_clean(self):
        config = BatchConfig(
            cases=4, seed=1, jobs=1, cycles=200, profile="small",
            traffic="regular",
        )
        report = BatchRunner(config).run()
        assert report.ok, report.summary()
        assert "traffic regular" in report.summary()
        assert report.coverage is not None
        assert report.coverage.cases == 4


class TestCoverage:
    def test_features_of_known_topology(self):
        topology = random_topology(3, REG)
        features = topology_features(topology)
        assert features["processes"] == len(topology.processes)
        assert features["traffic"] == "regular"
        assert features["uniform"] is True
        marked = [c for c in topology.channels if c.tokens > 0]
        assert features["feedback_channels"] == len(marked)

    def test_report_accumulates_and_serializes(self):
        config = BatchConfig(cases=6, seed=0, profile="small")
        report = CoverageReport.from_cases(make_cases(config))
        assert report.cases == 6
        data = report.to_dict()
        assert data["cases"] == 6
        assert sum(data["histograms"]["processes"].values()) == 6
        assert data["histograms"]["styles"]["fsm"] == 6
        # Deterministic: same config -> identical JSON.
        again = CoverageReport.from_cases(make_cases(config))
        assert report.to_json() == again.to_json()

    def test_render_mentions_every_metric(self):
        config = BatchConfig(cases=3, seed=2, profile="small")
        rendered = CoverageReport.from_cases(
            make_cases(config)
        ).render()
        for metric in ("processes", "feedback_depth", "max_fanout",
                       "styles", "traffic"):
            assert metric in rendered


class TestRegularCli:
    def test_traffic_regular_batch(self, capsys):
        assert main(
            ["verify", "--cases", "3", "--seed", "0",
             "--cycles", "150", "--traffic", "regular"]
        ) == 0
        out = capsys.readouterr().out
        assert "traffic regular" in out
        assert "0 divergent" in out

    def test_coverage_flags(self, tmp_path, capsys):
        path = tmp_path / "cov.json"
        assert main(
            ["verify", "--cases", "3", "--seed", "0",
             "--cycles", "150", "--traffic", "regular",
             "--coverage", "--coverage-json", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "coverage: topology shapes over 3 case(s)" in out
        data = json.loads(path.read_text())
        assert data["cases"] == 3
        assert data["histograms"]["traffic"] == {"regular": 3}
        assert data["histograms"]["styles"]["rtl-shiftreg"] == 3

    def test_profile_regular_preset(self, capsys):
        assert main(
            ["verify", "--cases", "2", "--seed", "1",
             "--cycles", "150", "--profile", "regular"]
        ) == 0
        assert "profile regular" in capsys.readouterr().out

    def test_regular_reproducer_replays(self, tmp_path, capsys):
        topology = random_topology(4, REG)
        data = topology_to_dict(topology)
        data["styles"] = list(REGULAR_STYLES)
        path = tmp_path / "regular.json"
        path.write_text(json.dumps(data))
        assert main(
            ["verify", "--repro", str(path), "--cycles", "150"]
        ) == 0
        assert "no divergence" in capsys.readouterr().out
